package farm

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

// serializeHash returns the nsp stream bytes of a hash, i.e. the content
// a problem save-file would hold.
func serializeHash(h *nsp.Hash) ([]byte, error) {
	s, err := nsp.Serialize(h)
	if err != nil {
		return nil, err
	}
	return s.Data, nil
}

// makePortfolio builds n distinct vanilla call problems and returns the
// tasks plus the closed-form price of each, keyed by name.
func makePortfolio(t *testing.T, n int) ([]Task, map[string]float64) {
	t.Helper()
	tasks := make([]Task, n)
	want := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := 80 + float64(i%40)
		p := premia.New().
			SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
			Set("S0", 100).Set("r", 0.04).Set("sigma", 0.2).Set("K", k).Set("T", 1+float64(i%8)/4)
		h, err := p.ToNsp()
		if err != nil {
			t.Fatal(err)
		}
		s, err := serializeHash(h)
		if err != nil {
			t.Fatal(err)
		}
		name := fmt.Sprintf("pb-%04d", i)
		tasks[i] = Task{Name: name, Data: s}
		res, err := p.Compute()
		if err != nil {
			t.Fatal(err)
		}
		want[name] = res.Price
	}
	return tasks, want
}

// runLocalFarm executes the farm on an in-process world.
func runLocalFarm(t *testing.T, tasks []Task, workers int, opts Options, store Store) []Result {
	t.Helper()
	w := mpi.NewLocalWorld(workers + 1)
	defer w.Close()
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			if err := RunWorker(w.Comm(rank), LiveExecutor{}, store, opts); err != nil {
				t.Errorf("worker %d: %v", rank, err)
			}
		}(r)
	}
	results, err := RunMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, opts)
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	return results
}

func checkResults(t *testing.T, results []Result, want map[string]float64) {
	t.Helper()
	if len(results) != len(want) {
		t.Fatalf("got %d results, want %d", len(results), len(want))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.Name] {
			t.Fatalf("task %s priced twice", r.Name)
		}
		seen[r.Name] = true
		price, ok := ResultField(r, "price")
		if !ok {
			t.Fatalf("result %s has no price", r.Name)
		}
		if math.Abs(price-want[r.Name]) > 1e-12 {
			t.Fatalf("task %s: price %v, want %v", r.Name, price, want[r.Name])
		}
	}
}

func TestFarmFullLoad(t *testing.T) {
	tasks, want := makePortfolio(t, 60)
	results := runLocalFarm(t, tasks, 4, Options{Strategy: FullLoad}, nil)
	checkResults(t, results, want)
}

func TestFarmSerializedLoad(t *testing.T) {
	tasks, want := makePortfolio(t, 60)
	results := runLocalFarm(t, tasks, 4, Options{Strategy: SerializedLoad}, nil)
	checkResults(t, results, want)
}

func TestFarmNFSLoad(t *testing.T) {
	tasks, want := makePortfolio(t, 60)
	store := MemStore{}
	for _, task := range tasks {
		store[task.Name] = task.Data
	}
	results := runLocalFarm(t, tasks, 4, Options{Strategy: NFSLoad}, store)
	checkResults(t, results, want)
}

func TestFarmStrategiesAgree(t *testing.T) {
	tasks, _ := makePortfolio(t, 30)
	store := MemStore{}
	for _, task := range tasks {
		store[task.Name] = task.Data
	}
	byName := func(results []Result) map[string]float64 {
		m := map[string]float64{}
		for _, r := range results {
			p, _ := ResultField(r, "price")
			m[r.Name] = p
		}
		return m
	}
	full := byName(runLocalFarm(t, tasks, 3, Options{Strategy: FullLoad}, nil))
	ser := byName(runLocalFarm(t, tasks, 3, Options{Strategy: SerializedLoad}, nil))
	nfs := byName(runLocalFarm(t, tasks, 3, Options{Strategy: NFSLoad}, store))
	for name := range full {
		if full[name] != ser[name] || full[name] != nfs[name] {
			t.Fatalf("strategies disagree on %s: %v %v %v", name, full[name], ser[name], nfs[name])
		}
	}
}

func TestFarmSingleWorker(t *testing.T) {
	tasks, want := makePortfolio(t, 10)
	results := runLocalFarm(t, tasks, 1, Options{Strategy: SerializedLoad}, nil)
	checkResults(t, results, want)
}

func TestFarmMoreWorkersThanTasks(t *testing.T) {
	tasks, want := makePortfolio(t, 3)
	results := runLocalFarm(t, tasks, 8, Options{Strategy: SerializedLoad}, nil)
	checkResults(t, results, want)
}

func TestFarmEmptyPortfolio(t *testing.T) {
	results := runLocalFarm(t, nil, 3, Options{Strategy: SerializedLoad}, nil)
	if len(results) != 0 {
		t.Fatalf("empty portfolio returned %d results", len(results))
	}
}

func TestFarmBatching(t *testing.T) {
	tasks, want := makePortfolio(t, 57) // not a multiple of the batch size
	for _, bs := range []int{2, 5, 16, 100} {
		results := runLocalFarm(t, tasks, 4, Options{Strategy: SerializedLoad, BatchSize: bs}, nil)
		checkResults(t, results, want)
	}
}

func TestFarmBatchingFullLoad(t *testing.T) {
	tasks, want := makePortfolio(t, 23)
	results := runLocalFarm(t, tasks, 3, Options{Strategy: FullLoad, BatchSize: 4}, nil)
	checkResults(t, results, want)
}

func TestFarmUsesAllWorkers(t *testing.T) {
	tasks, _ := makePortfolio(t, 80)
	results := runLocalFarm(t, tasks, 4, Options{Strategy: SerializedLoad}, nil)
	used := map[int]bool{}
	for _, r := range results {
		used[r.Worker] = true
	}
	if len(used) != 4 {
		t.Fatalf("only %d of 4 workers used", len(used))
	}
}

func TestFarmNoWorkersError(t *testing.T) {
	w := mpi.NewLocalWorld(1)
	defer w.Close()
	if _, err := RunMaster(context.Background(), w.Comm(0), nil, LiveLoader{}, Options{}); err == nil {
		t.Fatal("master accepted a world without workers")
	}
}

func TestFarmNFSWithoutStoreFails(t *testing.T) {
	w := mpi.NewLocalWorld(2)
	tasks, _ := makePortfolio(t, 2)
	masterErr := make(chan error, 1)
	go func() {
		_, err := RunMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, Options{Strategy: NFSLoad})
		masterErr <- err
	}()
	if err := RunWorker(w.Comm(1), LiveExecutor{}, nil, Options{Strategy: NFSLoad}); err == nil {
		t.Fatal("worker without a store did not fail")
	}
	// The worker died before answering; closing the world must unblock the
	// master with an error rather than hang.
	w.Close()
	if err := <-masterErr; err == nil {
		t.Fatal("master returned success despite a dead worker")
	}
}

func TestHierarchyWorkersPartition(t *testing.T) {
	size, groups := 20, 3 // 1 root + 3 sub-masters + 16 workers
	var all []int
	for g := 0; g < groups; g++ {
		ws := HierarchyWorkers(size, groups, g)
		if len(ws) < 5 || len(ws) > 6 {
			t.Fatalf("group %d has %d workers", g, len(ws))
		}
		all = append(all, ws...)
	}
	sort.Ints(all)
	if len(all) != 16 {
		t.Fatalf("partition covers %d workers, want 16", len(all))
	}
	for i, r := range all {
		if r != 4+i {
			t.Fatalf("partition %v not contiguous from 4", all)
		}
	}
}

func TestHierarchyWorkersPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	HierarchyWorkers(4, 2, 0)
}

func TestFarmHierarchical(t *testing.T) {
	tasks, want := makePortfolio(t, 40)
	const groups = 2
	const size = 1 + groups + 6 // root + 2 sub-masters + 6 workers
	w := mpi.NewLocalWorld(size)
	defer w.Close()
	opts := Options{Strategy: SerializedLoad}
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		sub := g + 1
		workers := HierarchyWorkers(size, groups, g)
		wg.Add(1)
		go func(rank int, ws []int) {
			defer wg.Done()
			if err := RunSubMaster(w.Comm(rank), ws, opts); err != nil {
				t.Errorf("sub-master %d: %v", rank, err)
			}
		}(sub, workers)
		for _, wr := range workers {
			wg.Add(1)
			go func(rank, master int) {
				defer wg.Done()
				wopts := opts
				wopts.MasterRank = master
				if err := RunWorker(w.Comm(rank), LiveExecutor{}, nil, wopts); err != nil {
					t.Errorf("worker %d: %v", rank, err)
				}
			}(wr, sub)
		}
	}
	results, err := RunRootMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, opts, groups, 5)
	if err != nil {
		t.Fatalf("root: %v", err)
	}
	wg.Wait()
	checkResults(t, results, want)
}

func TestFarmHierarchicalNFS(t *testing.T) {
	tasks, want := makePortfolio(t, 24)
	store := MemStore{}
	for _, task := range tasks {
		store[task.Name] = task.Data
	}
	const groups = 2
	const size = 1 + groups + 4
	w := mpi.NewLocalWorld(size)
	defer w.Close()
	opts := Options{Strategy: NFSLoad}
	var wg sync.WaitGroup
	for g := 0; g < groups; g++ {
		sub := g + 1
		workers := HierarchyWorkers(size, groups, g)
		wg.Add(1)
		go func(rank int, ws []int) {
			defer wg.Done()
			if err := RunSubMaster(w.Comm(rank), ws, opts); err != nil {
				t.Errorf("sub-master %d: %v", rank, err)
			}
		}(sub, workers)
		for _, wr := range workers {
			wg.Add(1)
			go func(rank, master int) {
				defer wg.Done()
				wopts := opts
				wopts.MasterRank = master
				if err := RunWorker(w.Comm(rank), LiveExecutor{}, store, wopts); err != nil {
					t.Errorf("worker %d: %v", rank, err)
				}
			}(wr, sub)
		}
	}
	results, err := RunRootMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, opts, groups, 4)
	if err != nil {
		t.Fatalf("root: %v", err)
	}
	wg.Wait()
	checkResults(t, results, want)
}

func TestFarmOverTCP(t *testing.T) {
	tasks, want := makePortfolio(t, 20)
	const size = 4
	hub, err := mpi.ListenHub("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- hub.WaitWorkers() }()
	opts := Options{Strategy: SerializedLoad}
	var wg sync.WaitGroup
	for i := 1; i < size; i++ {
		wc, err := mpi.DialHub(hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			defer c.Close()
			if err := RunWorker(c, LiveExecutor{}, nil, opts); err != nil {
				t.Errorf("tcp worker: %v", err)
			}
		}(wc)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	results, err := RunMaster(context.Background(), hub, tasks, LiveLoader{}, opts)
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	checkResults(t, results, want)
	wg.Wait()
}

func TestStrategyStrings(t *testing.T) {
	if FullLoad.String() != "full load" || NFSLoad.String() != "NFS" || SerializedLoad.String() != "serialized load" {
		t.Fatal("strategy labels do not match the paper")
	}
	if Strategy(9).String() == "" {
		t.Fatal("unknown strategy has empty label")
	}
	if NFSLoad.NeedsPayload() || !FullLoad.NeedsPayload() || !SerializedLoad.NeedsPayload() {
		t.Fatal("NeedsPayload wrong")
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	if _, err := decodeBatch(encodeBatch(nil, batchTrace{})); err != nil {
		t.Fatalf("empty batch should decode: %v", err)
	}
	if _, err := decodeBatch(nsp.Scalar(1)); err == nil {
		t.Fatal("non-hash descriptor accepted")
	}
	missing := nsp.NewHash()
	missing.Set(descNames, nsp.NewSMat(1, 1))
	if _, err := decodeBatch(missing); err == nil {
		t.Fatal("descriptor missing fields accepted")
	}
	// Wrong field type: replace costs with a hash.
	bad := encodeBatch([]Task{{Name: "x"}}, batchTrace{})
	bad.Set(descCosts, encodeBatch(nil, batchTrace{}))
	if _, err := decodeBatch(bad); err == nil {
		t.Fatal("wrong field type accepted")
	}
	// Mismatched lengths.
	short := encodeBatch([]Task{{Name: "x"}, {Name: "y"}}, batchTrace{})
	short.Set(descCosts, nsp.NewMat(1, 1))
	if _, err := decodeBatch(short); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	// Trace ID without parents.
	traceless := encodeBatch([]Task{{Name: "x"}}, batchTrace{})
	tid := nsp.NewMat(1, 2)
	splitU64(tid, 0, 0xff)
	traceless.Set(descTrace, tid)
	if _, err := decodeBatch(traceless); err == nil {
		t.Fatal("traced descriptor without parents accepted")
	}
	// Trace ID halves that are not 32-bit integers.
	garbled := encodeBatch([]Task{{Name: "x"}}, batchTrace{traceID: 7, parents: []uint64{1}})
	garbled.Set(descTrace, nsp.NewMat(1, 2)) // zero halves decode to trace 0…
	bad2 := nsp.NewMat(1, 2)
	bad2.Data[0], bad2.Data[1] = 0.5, 1e12
	garbled.Set(descTrace, bad2)
	if _, err := decodeBatch(garbled); err == nil {
		t.Fatal("non-integral trace halves accepted")
	}
}

// TestBatchTraceRoundTrip checks that trace context rides the descriptor
// and that untraced descriptors carry no trace fields (identical wire
// format to the pre-tracing protocol).
func TestBatchTraceRoundTrip(t *testing.T) {
	tasks := []Task{{Name: "a"}, {Name: "b"}}
	bt := batchTrace{traceID: 0xdeadbeefcafe, parents: []uint64{1 << 63, 42}}
	desc, err := decodeBatch(encodeBatch(tasks, bt))
	if err != nil {
		t.Fatal(err)
	}
	if desc.Trace.traceID != bt.traceID {
		t.Fatalf("trace ID %x, want %x", desc.Trace.traceID, bt.traceID)
	}
	if len(desc.Trace.parents) != 2 || desc.Trace.parents[0] != bt.parents[0] || desc.Trace.parents[1] != bt.parents[1] {
		t.Fatalf("parents %v, want %v", desc.Trace.parents, bt.parents)
	}
	plain := encodeBatch(tasks, batchTrace{})
	if _, ok := plain.Get(descTrace); ok {
		t.Fatal("untraced descriptor carries trace field")
	}
	if _, ok := plain.Get(descParents); ok {
		t.Fatal("untraced descriptor carries parents field")
	}
}

// TestSpanPayloadRoundTrip checks the worker→master span shipping codec,
// including 64-bit IDs that do not fit a float64.
func TestSpanPayloadRoundTrip(t *testing.T) {
	recs := []telemetry.SpanRecord{
		{ID: 1<<63 + 7, ParentID: 3, TraceID: 9, Name: "farm.compute", Start: 1.5, End: 2.25},
		{ID: 12, ParentID: 1<<63 + 7, TraceID: 9, Name: "kernel", Start: 1.6, End: 2.0},
	}
	h := encodeSpanPayload(recs, 1.25)
	if !isSpanPayload(h) {
		t.Fatal("span payload not recognized")
	}
	got, recvAt, err := decodeSpanPayload(h)
	if err != nil {
		t.Fatal(err)
	}
	if recvAt != 1.25 {
		t.Fatalf("recvAt = %v, want 1.25", recvAt)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
	// A regular result hash is not mistaken for a span payload.
	if isSpanPayload(resultHash("x", 1, 0, 0, 0)) {
		t.Fatal("result hash misdetected as span payload")
	}
}

func TestFarmNFSOverRealFiles(t *testing.T) {
	// The genuine NFS-strategy deployment: problems saved as files in a
	// shared directory, workers reading them back with FileStore, over the
	// TCP transport — the closest this repo gets to the paper's cluster
	// runs without a cluster.
	dir := t.TempDir()
	pf := make([]Task, 0, 12)
	want := map[string]float64{}
	for i := 0; i < 12; i++ {
		k := 90 + float64(i)
		p := premia.New().
			SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
			Set("S0", 100).Set("r", 0.04).Set("sigma", 0.2).Set("K", k).Set("T", 1)
		path := fmt.Sprintf("%s/pb-%02d.bin", dir, i)
		if err := p.Save(path); err != nil {
			t.Fatal(err)
		}
		res, err := p.Compute()
		if err != nil {
			t.Fatal(err)
		}
		want[path] = res.Price
		// Task names ARE the file paths under the NFS strategy; Data stays
		// empty on the master (only sizes travel).
		info, err := nsp.SLoad(path)
		if err != nil {
			t.Fatal(err)
		}
		pf = append(pf, Task{Name: path, Data: make([]byte, info.Len())})
	}
	const size = 3
	hub, err := mpi.ListenHub("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	accepted := make(chan error, 1)
	go func() { accepted <- hub.WaitWorkers() }()
	opts := Options{Strategy: NFSLoad}
	var wg sync.WaitGroup
	for i := 1; i < size; i++ {
		wc, err := mpi.DialHub(hub.Addr())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(c mpi.Comm) {
			defer wg.Done()
			defer c.Close()
			if err := RunWorker(c, LiveExecutor{}, FileStore{}, opts); err != nil {
				t.Errorf("worker: %v", err)
			}
		}(wc)
	}
	if err := <-accepted; err != nil {
		t.Fatal(err)
	}
	results, err := RunMaster(context.Background(), hub, pf, LiveLoader{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(results) != 12 {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		price, ok := ResultField(r, "price")
		if !ok || price != want[r.Name] {
			t.Fatalf("%s: price %v, want %v", r.Name, price, want[r.Name])
		}
	}
}

func TestFarmRejectsDuplicateNames(t *testing.T) {
	w := mpi.NewLocalWorld(2)
	defer w.Close()
	tasks := []Task{{Name: "same", Data: []byte("a")}, {Name: "same", Data: []byte("b")}}
	if _, err := RunMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, Options{Strategy: SerializedLoad}); err == nil {
		t.Fatal("duplicate task names accepted")
	}
}

// The static and hierarchical masters share RunMaster's duplicate-name
// validation (names key retry bookkeeping and results), so both must
// reject conflating task lists before dispatching anything.
func TestStaticFarmRejectsDuplicateNames(t *testing.T) {
	w := mpi.NewLocalWorld(2)
	defer w.Close()
	tasks := []Task{{Name: "same", Data: []byte("a")}, {Name: "same", Data: []byte("b")}}
	if _, err := RunStaticMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, Options{Strategy: SerializedLoad}); err == nil {
		t.Fatal("duplicate task names accepted by static master")
	}
}

func TestRootMasterRejectsDuplicateNames(t *testing.T) {
	w := mpi.NewLocalWorld(2)
	defer w.Close()
	tasks := []Task{{Name: "same", Data: []byte("a")}, {Name: "same", Data: []byte("b")}}
	if _, err := RunRootMaster(context.Background(), w.Comm(0), tasks, LiveLoader{}, Options{Strategy: SerializedLoad}, 1, 1); err == nil {
		t.Fatal("duplicate task names accepted by root master")
	}
}
