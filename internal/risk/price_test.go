package risk

import (
	"context"
	"errors"
	"sync"
	"testing"

	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

// mapCache is a minimal PriceCache for the tests; the production sharded
// LRU lives in internal/serve.
type mapCache struct {
	mu sync.Mutex
	m  map[string]premia.Result
}

func newMapCache() *mapCache { return &mapCache{m: map[string]premia.Result{}} }

func (c *mapCache) Get(key string) (premia.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m[key]
	return r, ok
}

func (c *mapCache) Put(key string, res premia.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = res
}

func mcProblem(seed uint64) *premia.Problem {
	return premia.New().
		SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodMCEuro).
		Set("S0", 100).Set("r", 0.04).Set("sigma", 0.2).Set("K", 100).Set("T", 1).
		Set("paths", 2000).SetSeed(seed)
}

func TestPriceBatchMatchesCompute(t *testing.T) {
	e := Engine{Workers: 3, BatchSize: 2}
	probs := []*premia.Problem{callProblem(90), callProblem(100), callProblem(110)}
	out, err := e.PriceBatch(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range probs {
		if out[i].Err != nil {
			t.Fatalf("problem %d: %v", i, out[i].Err)
		}
		want, err := p.Compute()
		if err != nil {
			t.Fatal(err)
		}
		if out[i].Result.Price != want.Price || out[i].Result.Delta != want.Delta {
			t.Errorf("problem %d: farm price %v/%v, direct %v/%v",
				i, out[i].Result.Price, out[i].Result.Delta, want.Price, want.Delta)
		}
		if !out[i].Result.HasDelta {
			t.Errorf("problem %d lost HasDelta through the farm", i)
		}
		if out[i].Cached {
			t.Errorf("problem %d reported cached on a cold engine", i)
		}
	}
}

func TestPriceBatchPerProblemErrors(t *testing.T) {
	e := Engine{Workers: 2}
	bad := premia.New().SetModel("nope").SetOption("nope").SetMethod("nope")
	out, err := e.PriceBatch(context.Background(), []*premia.Problem{callProblem(100), bad, nil})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil {
		t.Fatalf("good problem failed: %v", out[0].Err)
	}
	if !errors.Is(out[1].Err, premia.ErrUnknownMethod) {
		t.Fatalf("invalid problem error = %v, want ErrUnknownMethod", out[1].Err)
	}
	if out[2].Err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestPriceBatchDedupesWithinBatch(t *testing.T) {
	reg := telemetry.New()
	e := Engine{Workers: 2, Telemetry: reg}
	p := mcProblem(7)
	out, err := e.PriceBatch(context.Background(), []*premia.Problem{p, p.Clone(), p.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(out); i++ {
		if out[i].Result != out[0].Result {
			t.Fatalf("duplicate %d got a different result", i)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["risk.price.farmed"] != 1 {
		t.Fatalf("farmed %d tasks for 3 identical problems, want 1", snap.Counters["risk.price.farmed"])
	}
	if snap.Counters["risk.price.deduped"] != 2 {
		t.Fatalf("deduped = %d, want 2", snap.Counters["risk.price.deduped"])
	}
}

func TestPriceBatchCacheBitIdentical(t *testing.T) {
	cache := newMapCache()
	e := Engine{Workers: 2, Cache: cache}
	probs := []*premia.Problem{mcProblem(1), mcProblem(2)}
	cold, err := e.PriceBatch(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := e.PriceBatch(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range probs {
		if !warm[i].Cached {
			t.Fatalf("problem %d missed the cache on the second call", i)
		}
		// Bit-identical, not approximately equal: the cache must never
		// change a price.
		if warm[i].Result != cold[i].Result {
			t.Fatalf("problem %d: cached result %+v != fresh %+v", i, warm[i].Result, cold[i].Result)
		}
	}
}

func TestPriceBatchCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := Engine{Workers: 2}
	if _, err := e.PriceBatch(ctx, []*premia.Problem{callProblem(100)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Revaluing twice with a cache reuses every base-scenario price and
// leaves the valuation unchanged.
func TestRevalueBaseCacheReuse(t *testing.T) {
	pf := portfolio.Toy(12)
	scens := []Scenario{
		{Name: "up", Shifts: []Shift{{Param: "S0", Rel: 0.05}}},
		{Name: "down", Shifts: []Shift{{Param: "S0", Rel: -0.05}}},
	}
	reg := telemetry.New()
	e := Engine{Workers: 3, Cache: newMapCache(), Telemetry: reg}
	v1, err := e.Revalue(pf, scens)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Snapshot().Counters["risk.base_cache_hits"]; hits != 0 {
		t.Fatalf("cold run had %d base cache hits", hits)
	}
	v2, err := e.Revalue(pf, scens)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Snapshot().Counters["risk.base_cache_hits"]; hits != int64(len(pf.Items)) {
		t.Fatalf("warm run base cache hits = %d, want %d", hits, len(pf.Items))
	}
	for i := range v1.Base {
		if v1.Base[i] != v2.Base[i] {
			t.Fatalf("claim %d base value changed through the cache", i)
		}
	}
	for s := range v1.Values {
		for i := range v1.Values[s] {
			if v1.Values[s][i] != v2.Values[s][i] {
				t.Fatalf("scenario %d claim %d value changed", s, i)
			}
		}
	}
}
