package risk

import (
	"context"
	"fmt"
	"math"
	"testing"

	"riskbench/internal/mpi"
	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

// TestCompatMatrix is the rolling-upgrade acceptance test: every pairing
// of adjacent protocol versions (old worker ↔ new master and new worker
// ↔ old master), over both real transports, must price bit-identically
// to the in-process baseline. Optional wire features degrade silently:
// span payloads ship only when both ends negotiated the capability, and
// the hasdelta result marker survives exactly when the worker believes
// its master understands it.
func TestCompatMatrix(t *testing.T) {
	probs := []*premia.Problem{callProblem(90), callProblem(100), callProblem(110), mcProblem(7)}
	local := Engine{Workers: 2, BatchSize: 2}
	want, err := local.PriceBatch(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	if !want[0].Result.HasDelta {
		t.Fatal("baseline CF price should carry a delta; the hasdelta assertions below assume it")
	}

	for _, transport := range []string{"tcp", "unix"} {
		for _, masterProto := range []int{mpi.ProtoV1, mpi.ProtoV2} {
			for _, workerProto := range []int{mpi.ProtoV1, mpi.ProtoV2} {
				name := fmt.Sprintf("%s/master_v%d/worker_v%d", transport, masterProto, workerProto)
				t.Run(name, func(t *testing.T) {
					reg := telemetry.New()
					e := Engine{
						Workers:   2,
						BatchSize: 2,
						Telemetry: reg,
						Backend: &NetBackend{
							Transport: transport,
							Proto:     masterProto,
							Spawn:     GoNetWorkers(func(int) *telemetry.Registry { return telemetry.New() }, workerProto),
						},
					}
					root := reg.StartTrace("compat.request")
					ctx := telemetry.ContextWithTrace(context.Background(), root.Context())
					out, err := e.PriceBatch(ctx, probs)
					root.End()
					if err != nil {
						t.Fatal(err)
					}

					// Prices must be bit-identical across every pairing:
					// the protocol downgrade may strip telemetry, never
					// numbers.
					for i := range probs {
						if out[i].Err != nil {
							t.Fatalf("problem %d: %v", i, out[i].Err)
						}
						if math.Float64bits(out[i].Result.Price) != math.Float64bits(want[i].Result.Price) {
							t.Errorf("problem %d: price %v over %s, local %v",
								i, out[i].Result.Price, transport, want[i].Result.Price)
						}
						if math.Float64bits(out[i].Result.PriceCI) != math.Float64bits(want[i].Result.PriceCI) {
							t.Errorf("problem %d: CI %v over %s, local %v",
								i, out[i].Result.PriceCI, transport, want[i].Result.PriceCI)
						}
					}

					// Span payloads cross the wire only when master and
					// worker both speak a protocol whose negotiated set
					// includes the spans capability: same-version pairs do
					// (v1 by the implicit legacy contract, v2 by explicit
					// handshake), mixed pairs silently unship them.
					shipped := 0
					for _, tr := range reg.Traces() {
						for _, s := range tr.Spans {
							if s.Name == "farm.compute" {
								shipped++
							}
						}
					}
					if masterProto == workerProto {
						if shipped != len(probs) {
							t.Errorf("%d worker spans shipped, want %d", shipped, len(probs))
						}
					} else if shipped != 0 {
						t.Errorf("%d worker spans shipped across a version boundary, want 0", shipped)
					}

					// The hasdelta marker is stripped only when a v2 worker
					// cannot confirm its master understands it (a v1 master
					// never negotiated the capability).
					wantDelta := !(masterProto == mpi.ProtoV1 && workerProto == mpi.ProtoV2)
					if got := out[0].Result.HasDelta; got != wantDelta {
						t.Errorf("HasDelta = %v, want %v for master v%d / worker v%d",
							got, wantDelta, masterProto, workerProto)
					}
				})
			}
		}
	}
}

// TestCompatNetBackendDefaults checks the zero-config path: a NetBackend
// with no transport or protocol pinned speaks the latest protocol over
// TCP and keeps the full feature set.
func TestCompatNetBackendDefaults(t *testing.T) {
	reg := telemetry.New()
	e := Engine{
		Workers:   2,
		Telemetry: reg,
		Backend:   &NetBackend{Spawn: GoNetWorkers(func(int) *telemetry.Registry { return telemetry.New() }, 0)},
	}
	probs := []*premia.Problem{callProblem(95), callProblem(105)}
	root := reg.StartTrace("compat.request")
	ctx := telemetry.ContextWithTrace(context.Background(), root.Context())
	out, err := e.PriceBatch(ctx, probs)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("problem %d: %v", i, o.Err)
		}
		if !o.Result.HasDelta {
			t.Errorf("problem %d lost its hasdelta marker on the default path", i)
		}
	}
	shipped := 0
	for _, tr := range reg.Traces() {
		for _, s := range tr.Spans {
			if s.Name == "farm.compute" {
				shipped++
			}
		}
	}
	if shipped != len(probs) {
		t.Errorf("%d worker spans shipped, want %d", shipped, len(probs))
	}
}
