package farm

import (
	"errors"
	"fmt"

	"riskbench/internal/nsp"
	"riskbench/internal/telemetry"
)

// Event-payload wire codec. A worker that negotiated the "events"
// capability appends one extra hash, marked by eventMarker, to its
// result list, carrying the warning+ flight-recorder events it emitted
// while pricing the batch plus its descriptor-receive clock reading (so
// the master can shift worker clocks onto its own, exactly like the
// span payload). Names and field keys are interned into string tables;
// IDs travel as split 32-bit halves; field values flatten into parallel
// arrays with a per-event count, so the payload is a handful of
// matrices regardless of event shape.
const (
	eventMarker   = "__events"
	eventLevels   = "levels"  // 1xn severity ordinals
	eventNames    = "names"   // intern table: distinct event names
	eventNameIx   = "nameix"  // per-event index into the name table
	eventTraces   = "traces"  // 1x2n matrix of trace-ID halves
	eventWhens    = "whens"   // 1xn worker-clock timestamps
	eventNFields  = "nfields" // 1xn per-event field counts
	eventFieldKey = "fkeyix"  // 1xm per-field index into the key table
	eventFieldNum = "fnums"   // 1xm numeric value, or index into fstrs
	eventFieldStr = "fisstr"  // 1xm 0/1: is the field a string
	eventKeys     = "fkeys"   // intern table: distinct field keys
	eventStrs     = "fstrs"   // intern table: distinct string values
	eventRecvAt   = "recvat"
)

// internIx returns s's index in tab, appending it if new.
func internIx(tab *[]string, s string) int {
	for i, v := range *tab {
		if v == s {
			return i
		}
	}
	*tab = append(*tab, s)
	return len(*tab) - 1
}

// encodeEventPayload packs worker events for the trip back to the
// master. recvAt is the worker clock at descriptor receipt.
func encodeEventPayload(evs []telemetry.Event, recvAt float64) *nsp.Hash {
	n := len(evs)
	levels := nsp.NewMat(1, n)
	nameIx := nsp.NewMat(1, n)
	traces := nsp.NewMat(1, 2*n)
	whens := nsp.NewMat(1, n)
	nFields := nsp.NewMat(1, n)
	var names, keys, strs []string
	var keyIx, nums, isStr []float64
	for i, ev := range evs {
		levels.Data[i] = float64(ev.Level)
		nameIx.Data[i] = float64(internIx(&names, ev.Name))
		splitU64(traces, i, ev.TraceID)
		whens.Data[i] = ev.When
		nFields.Data[i] = float64(len(ev.Fields))
		for _, f := range ev.Fields {
			keyIx = append(keyIx, float64(internIx(&keys, f.Key)))
			if s, ok := f.StrValue(); ok {
				isStr = append(isStr, 1)
				nums = append(nums, float64(internIx(&strs, s)))
			} else {
				v, _ := f.NumValue()
				isStr = append(isStr, 0)
				nums = append(nums, v)
			}
		}
	}
	toSMat := func(ss []string) *nsp.SMat {
		m := nsp.NewSMat(1, len(ss))
		copy(m.Data, ss)
		return m
	}
	toMat := func(vs []float64) *nsp.Mat {
		m := nsp.NewMat(1, len(vs))
		copy(m.Data, vs)
		return m
	}
	h := nsp.NewHash()
	h.Set(eventMarker, nsp.Scalar(1))
	h.Set(eventLevels, levels)
	h.Set(eventNames, toSMat(names))
	h.Set(eventNameIx, nameIx)
	h.Set(eventTraces, traces)
	h.Set(eventWhens, whens)
	h.Set(eventNFields, nFields)
	h.Set(eventFieldKey, toMat(keyIx))
	h.Set(eventFieldNum, toMat(nums))
	h.Set(eventFieldStr, toMat(isStr))
	h.Set(eventKeys, toSMat(keys))
	h.Set(eventStrs, toSMat(strs))
	h.Set(eventRecvAt, nsp.Scalar(recvAt))
	return h
}

// isEventPayload reports whether a result-list item is an event payload
// rather than a task result.
func isEventPayload(o nsp.Object) bool {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return false
	}
	_, ok = h.Get(eventMarker)
	return ok
}

// decodeEventPayload unpacks an event payload hash. Event times stay on
// the worker clock (the caller shifts them) and Rank is left at
// RankLocal (the caller attributes the source rank).
func decodeEventPayload(o nsp.Object) ([]telemetry.Event, float64, error) {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return nil, 0, errors.New("farm: event payload is not a hash")
	}
	mat := func(key string) (*nsp.Mat, error) {
		v, ok := h.Get(key)
		if !ok {
			return nil, fmt.Errorf("farm: event payload missing %q", key)
		}
		m, ok := v.(*nsp.Mat)
		if !ok {
			return nil, fmt.Errorf("farm: event payload %q has wrong type", key)
		}
		return m, nil
	}
	smat := func(key string) (*nsp.SMat, error) {
		v, ok := h.Get(key)
		if !ok {
			return nil, fmt.Errorf("farm: event payload missing %q", key)
		}
		m, ok := v.(*nsp.SMat)
		if !ok {
			return nil, fmt.Errorf("farm: event payload %q has wrong type", key)
		}
		return m, nil
	}
	levels, err := mat(eventLevels)
	if err != nil {
		return nil, 0, err
	}
	nameIx, err := mat(eventNameIx)
	if err != nil {
		return nil, 0, err
	}
	traces, err := mat(eventTraces)
	if err != nil {
		return nil, 0, err
	}
	whens, err := mat(eventWhens)
	if err != nil {
		return nil, 0, err
	}
	nFields, err := mat(eventNFields)
	if err != nil {
		return nil, 0, err
	}
	keyIx, err := mat(eventFieldKey)
	if err != nil {
		return nil, 0, err
	}
	nums, err := mat(eventFieldNum)
	if err != nil {
		return nil, 0, err
	}
	isStr, err := mat(eventFieldStr)
	if err != nil {
		return nil, 0, err
	}
	names, err := smat(eventNames)
	if err != nil {
		return nil, 0, err
	}
	keys, err := smat(eventKeys)
	if err != nil {
		return nil, 0, err
	}
	strs, err := smat(eventStrs)
	if err != nil {
		return nil, 0, err
	}
	rv, err := mat(eventRecvAt)
	if err != nil || len(rv.Data) != 1 {
		return nil, 0, errors.New("farm: event payload recvat malformed")
	}
	n := len(levels.Data)
	if len(nameIx.Data) != n || len(traces.Data) != 2*n || len(whens.Data) != n || len(nFields.Data) != n {
		return nil, 0, errors.New("farm: event payload field lengths disagree")
	}
	m := len(keyIx.Data)
	if len(nums.Data) != m || len(isStr.Data) != m {
		return nil, 0, errors.New("farm: event payload field arrays disagree")
	}
	strTab := func(tab *nsp.SMat, v float64, what string) (string, error) {
		ix := int(v)
		if float64(ix) != v || ix < 0 || ix >= len(tab.Data) {
			return "", fmt.Errorf("farm: event payload %s index %v out of range", what, v)
		}
		return tab.Data[ix], nil
	}
	evs := make([]telemetry.Event, n)
	fi := 0
	for i := range evs {
		evs[i].Level = telemetry.Level(int8(levels.Data[i]))
		if evs[i].Name, err = strTab(names, nameIx.Data[i], "name"); err != nil {
			return nil, 0, err
		}
		if evs[i].TraceID, err = joinU64(traces, i); err != nil {
			return nil, 0, fmt.Errorf("farm: event payload trace %d: %w", i, err)
		}
		evs[i].When = whens.Data[i]
		evs[i].Rank = telemetry.RankLocal
		nf := int(nFields.Data[i])
		if float64(nf) != nFields.Data[i] || nf < 0 || fi+nf > m {
			return nil, 0, fmt.Errorf("farm: event payload field count %v malformed", nFields.Data[i])
		}
		for j := 0; j < nf; j++ {
			key, err := strTab(keys, keyIx.Data[fi], "key")
			if err != nil {
				return nil, 0, err
			}
			if isStr.Data[fi] != 0 {
				s, err := strTab(strs, nums.Data[fi], "value")
				if err != nil {
					return nil, 0, err
				}
				evs[i].Fields = append(evs[i].Fields, telemetry.Str(key, s))
			} else {
				evs[i].Fields = append(evs[i].Fields, telemetry.Num(key, nums.Data[fi]))
			}
			fi++
		}
	}
	if fi != m {
		return nil, 0, errors.New("farm: event payload has unclaimed fields")
	}
	return evs, rv.Data[0], nil
}
