package nsp

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestXDRRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	e := NewXDREncoder(&buf)
	e.PutInt(-42)
	e.PutUint32(7)
	e.PutBool(true)
	e.PutBool(false)
	e.PutFloat64(3.14159)
	e.PutString("hello")
	e.PutString("")
	e.PutString("abcd") // exactly one word, no padding
	e.PutFloat64s([]float64{1, 2, 3})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}

	d := NewXDRDecoder(&buf)
	if v := d.Int(); v != -42 {
		t.Errorf("Int = %d", v)
	}
	if v := d.Uint32(); v != 7 {
		t.Errorf("Uint32 = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool mismatch")
	}
	if v := d.Float64(); v != 3.14159 {
		t.Errorf("Float64 = %v", v)
	}
	if v := d.String(); v != "hello" {
		t.Errorf("String = %q", v)
	}
	if v := d.String(); v != "" {
		t.Errorf("empty String = %q", v)
	}
	if v := d.String(); v != "abcd" {
		t.Errorf("String = %q", v)
	}
	vs := d.Float64s()
	if len(vs) != 3 || vs[0] != 1 || vs[2] != 3 {
		t.Errorf("Float64s = %v", vs)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestXDRPadding(t *testing.T) {
	// Every encoded size must be a multiple of 4 bytes (XDR invariant).
	for _, s := range []string{"", "a", "ab", "abc", "abcd", "abcde"} {
		var buf bytes.Buffer
		e := NewXDREncoder(&buf)
		e.PutString(s)
		if err := e.Err(); err != nil {
			t.Fatal(err)
		}
		if buf.Len()%4 != 0 {
			t.Errorf("string %q encoded to %d bytes (not word-aligned)", s, buf.Len())
		}
	}
}

func TestXDRPropertyRoundTrip(t *testing.T) {
	f := func(i int32, v float64, s string, vs []float64) bool {
		if math.IsNaN(v) {
			return true
		}
		for _, x := range vs {
			if math.IsNaN(x) {
				return true
			}
		}
		var buf bytes.Buffer
		e := NewXDREncoder(&buf)
		e.PutInt(int(i))
		e.PutFloat64(v)
		e.PutString(s)
		e.PutFloat64s(vs)
		if e.Err() != nil {
			return false
		}
		d := NewXDRDecoder(&buf)
		gi := d.Int()
		gv := d.Float64()
		gs := d.String()
		gvs := d.Float64s()
		if d.Err() != nil {
			return false
		}
		if gi != int(i) || gv != v || gs != s || len(gvs) != len(vs) {
			return false
		}
		for j := range vs {
			if gvs[j] != vs[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestXDRDecoderShortInput(t *testing.T) {
	d := NewXDRDecoder(bytes.NewReader([]byte{0, 0}))
	if d.Uint32() != 0 || d.Err() == nil {
		t.Fatal("short read not detected")
	}
	// After an error every further read returns zero values.
	if d.Int() != 0 || d.Float64() != 0 || d.String() != "" || d.Float64s() != nil {
		t.Fatal("post-error reads not zeroed")
	}
}

func TestXDRStringTooLarge(t *testing.T) {
	var buf bytes.Buffer
	e := NewXDREncoder(&buf)
	e.PutUint32(0xffffffff)
	d := NewXDRDecoder(&buf)
	if d.String() != "" || d.Err() == nil {
		t.Fatal("oversized string length not rejected")
	}
}

func TestXDRIntOverflow(t *testing.T) {
	var buf bytes.Buffer
	e := NewXDREncoder(&buf)
	e.PutInt(math.MaxInt64)
	if e.Err() == nil {
		t.Fatal("int overflow not detected")
	}
}
