package mpi

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"riskbench/internal/nsp"
)

func TestLocalSendRecv(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	go func() {
		if err := w.Comm(1).Send([]byte("hello"), 0, 7); err != nil {
			t.Error(err)
		}
	}()
	data, st, err := w.Comm(0).Recv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello" || st.Source != 1 || st.Tag != 7 || st.Bytes != 5 {
		t.Fatalf("got %q, %+v", data, st)
	}
}

func TestLocalProbeThenRecv(t *testing.T) {
	// The paper's receive pattern: probe for size, allocate, then recv.
	w := NewLocalWorld(2)
	defer w.Close()
	go w.Comm(0).Send(make([]byte, 1234), 1, 3)
	st, err := w.Comm(1).Probe(AnySource, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bytes != 1234 || st.Source != 0 || st.Tag != 3 {
		t.Fatalf("probe status %+v", st)
	}
	// Probe must not consume: a second probe sees the same message.
	st2, err := w.Comm(1).Probe(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st2 != st {
		t.Fatalf("second probe %+v != first %+v", st2, st)
	}
	data, _, err := w.Comm(1).Recv(st.Source, st.Tag)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1234 {
		t.Fatalf("recv %d bytes", len(data))
	}
}

func TestLocalTagFiltering(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)
	if err := c0.Send([]byte("a"), 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c0.Send([]byte("b"), 1, 2); err != nil {
		t.Fatal(err)
	}
	// Receive tag 2 first even though tag 1 arrived earlier.
	data, _, err := c1.Recv(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "b" {
		t.Fatalf("tag filter broke: %q", data)
	}
	data, _, err = c1.Recv(AnySource, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "a" {
		t.Fatalf("leftover message wrong: %q", data)
	}
}

func TestLocalOrderPreservedPerPair(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := w.Comm(0).Send([]byte{byte(i)}, 1, 5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		data, _, err := w.Comm(1).Recv(0, 5)
		if err != nil {
			t.Fatal(err)
		}
		if data[0] != byte(i) {
			t.Fatalf("message %d out of order: got %d", i, data[0])
		}
	}
}

func TestLocalSendCopiesData(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	buf := []byte("immutable?")
	if err := w.Comm(0).Send(buf, 1, 0); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X'
	data, _, err := w.Comm(1).Recv(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "immutable?" {
		t.Fatal("send aliased the caller's buffer")
	}
}

func TestLocalSendInvalidRank(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	if err := w.Comm(0).Send(nil, 5, 0); err == nil {
		t.Fatal("send to rank 5 in a 2-world succeeded")
	}
	if err := w.Comm(0).Send(nil, -1, 0); err == nil {
		t.Fatal("send to rank -1 succeeded")
	}
}

func TestLocalCloseUnblocks(t *testing.T) {
	w := NewLocalWorld(2)
	done := make(chan error, 1)
	go func() {
		_, _, err := w.Comm(1).Recv(0, 0)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("want ErrClosed, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestLocalManyToOneConcurrent(t *testing.T) {
	const workers = 16
	const per = 50
	w := NewLocalWorld(workers + 1)
	defer w.Close()
	var wg sync.WaitGroup
	for r := 1; r <= workers; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Comm(rank).Send([]byte(fmt.Sprintf("%d:%d", rank, i)), 0, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	seen := map[string]bool{}
	for i := 0; i < workers*per; i++ {
		data, st, err := w.Comm(0).Recv(AnySource, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st.Source < 1 || st.Source > workers {
			t.Fatalf("bad source %d", st.Source)
		}
		if seen[string(data)] {
			t.Fatalf("duplicate message %q", data)
		}
		seen[string(data)] = true
	}
	wg.Wait()
}

func TestSpawn(t *testing.T) {
	// Echo workers: receive one message, send it back, exit.
	master, wait := Spawn(4, func(c Comm) {
		data, st, err := c.Recv(0, AnyTag)
		if err != nil {
			return
		}
		_ = c.Send(data, 0, st.Tag)
	})
	for r := 1; r <= 4; r++ {
		if err := master.Send([]byte{byte(r)}, r, 9); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	for r := 1; r <= 4; r++ {
		data, st, err := master.Recv(AnySource, 9)
		if err != nil {
			t.Fatal(err)
		}
		if int(data[0]) != st.Source {
			t.Fatalf("echo mismatch: %d from %d", data[0], st.Source)
		}
		got++
	}
	if got != 4 {
		t.Fatalf("got %d echoes", got)
	}
	wait()
}

func TestSendRecvObj(t *testing.T) {
	// Paper: A=list('string',%t,rand(4,4)); MPI_Send_Obj; MPI_Recv_Obj.
	w := NewLocalWorld(2)
	defer w.Close()
	mat := nsp.NewMat(4, 4)
	for i := range mat.Data {
		mat.Data[i] = float64(i) / 16
	}
	a := nsp.NewList(nsp.Str("string"), nsp.Bool(true), mat)
	go func() {
		if err := SendObj(w.Comm(0), a, 1, 3); err != nil {
			t.Error(err)
		}
	}()
	b, st, err := RecvObj(w.Comm(1), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Source != 0 {
		t.Fatalf("source %d", st.Source)
	}
	if !b.Equal(a) {
		t.Fatal("object changed in transit")
	}
}

func TestSendObjSerialUnseals(t *testing.T) {
	// Paper: S=serialize(A); MPI_Send_Obj(S,...); B=MPI_Recv_Obj → B.equal[A].
	w := NewLocalWorld(2)
	defer w.Close()
	a := nsp.RowVec(1, 2, 3)
	s, err := nsp.Serialize(a)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := SendObj(w.Comm(0), s, 1, 0); err != nil {
			t.Error(err)
		}
	}()
	b, _, err := RecvObj(w.Comm(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(a) {
		t.Fatalf("unsealed object %v != original", b)
	}
}

func TestSendObjCompressedSerialUnseals(t *testing.T) {
	w := NewLocalWorld(2)
	defer w.Close()
	a := nsp.NewMat(1, 100)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	s, err := nsp.Serialize(a)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := s.Compress()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := SendObj(w.Comm(0), cs, 1, 0); err != nil {
			t.Error(err)
		}
	}()
	b, _, err := RecvObj(w.Comm(1), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Equal(a) {
		t.Fatal("compressed serial did not unseal to the original")
	}
}

func TestPackUnpack(t *testing.T) {
	// Paper: H=hash(A=..., B=...); P=MPI_Pack(H); send; probe; mpibuf;
	// recv; MPI_Unpack.
	w := NewLocalWorld(2)
	defer w.Close()
	h := nsp.NewHash()
	h.Set("A", nsp.RowVec(1, 0))
	h.Set("B", nsp.NewList(nsp.Str("foo"), nsp.RowVec(1, 2, 3, 4)))
	p, err := Pack(h)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := w.Comm(0).Send(p.Data, 1, 11); err != nil {
			t.Error(err)
		}
	}()
	st, err := w.Comm(1).Probe(AnySource, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	buf := NewBuf(st.Bytes)
	data, _, err := w.Comm(1).Recv(st.Source, st.Tag)
	if err != nil {
		t.Fatal(err)
	}
	copy(buf.Data, data)
	h1, err := buf.Unpack()
	if err != nil {
		t.Fatal(err)
	}
	if !h1.Equal(h) {
		t.Fatal("pack/unpack changed the hash")
	}
}

func TestUnpackGarbage(t *testing.T) {
	b := &Buf{Data: []byte("not a stream")}
	if _, err := b.Unpack(); err == nil {
		t.Fatal("garbage unpacked")
	}
}

func TestNewLocalWorldPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLocalWorld(0)
}
