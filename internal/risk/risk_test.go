package risk

import (
	"math"
	"strings"
	"testing"

	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
)

func callProblem(k float64) *premia.Problem {
	return premia.New().
		SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
		Set("S0", 100).Set("r", 0.04).Set("sigma", 0.2).Set("K", k).Set("T", 1)
}

func TestScenarioApplyRelAbs(t *testing.T) {
	p := callProblem(100)
	sc := Scenario{Name: "x", Shifts: []Shift{
		{Param: "S0", Rel: 0.1},
		{Param: "r", Abs: 0.01},
	}}
	q, err := sc.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q.Params["S0"]-110) > 1e-12 {
		t.Errorf("S0 = %v, want 110", q.Params["S0"])
	}
	if math.Abs(q.Params["r"]-0.05) > 1e-15 {
		t.Errorf("r = %v, want 0.05", q.Params["r"])
	}
	// The original is untouched.
	if p.Params["S0"] != 100 || p.Params["r"] != 0.04 {
		t.Error("Apply mutated the original problem")
	}
}

func TestScenarioApplyVolToken(t *testing.T) {
	// The vol token resolves per model.
	bs, err := (Scenario{Name: "v", Shifts: []Shift{{Param: VolToken, Rel: 0.5}}}).Apply(callProblem(100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bs.Params["sigma"]-0.3) > 1e-15 {
		t.Errorf("sigma = %v, want 0.3", bs.Params["sigma"])
	}
	heston := premia.New().
		SetModel(premia.ModelHeston).SetOption(premia.OptPutEuro).SetMethod(premia.MethodCFHeston).
		Set("S0", 100).Set("r", 0.03).Set("V0", 0.04).Set("kappa", 2).Set("theta", 0.04).
		Set("sigmaV", 0.3).Set("rhoSV", -0.5).Set("K", 100).Set("T", 1)
	hb, err := (Scenario{Name: "v", Shifts: []Shift{{Param: VolToken, Rel: 0.5}}}).Apply(heston)
	if err != nil {
		t.Fatal(err)
	}
	// Variance bump squares the volatility bump: 0.04·1.5² = 0.09.
	if math.Abs(hb.Params["V0"]-0.09) > 1e-12 {
		t.Errorf("V0 = %v, want 0.09", hb.Params["V0"])
	}
}

func TestScenarioApplyMissingParam(t *testing.T) {
	sc := Scenario{Name: "bad", Shifts: []Shift{{Param: "nonexistent", Rel: 0.1}}}
	if _, err := sc.Apply(callProblem(100)); err == nil {
		t.Fatal("missing parameter accepted")
	}
}

func TestLadders(t *testing.T) {
	spot := SpotLadder()
	if len(spot) != 10 {
		t.Fatalf("spot ladder has %d scenarios", len(spot))
	}
	for _, sc := range spot {
		if len(sc.Shifts) != 1 || sc.Shifts[0].Param != "S0" {
			t.Fatalf("bad spot scenario %+v", sc)
		}
	}
	if len(VolLadder()) != 6 || len(RateShifts()) != 6 || len(StressScenarios()) != 4 {
		t.Error("standard ladders changed size")
	}
	grid := Grid([]float64{-0.1, 0, 0.1}, []float64{-0.2, 0.2})
	if len(grid) != 6 {
		t.Fatalf("grid has %d scenarios", len(grid))
	}
}

func TestVaRQuantiles(t *testing.T) {
	// P&L of -100..-1 and 1..100: at 99% the worst 1% boundary is ≈ -99.
	pnls := make([]float64, 0, 200)
	for i := 1; i <= 100; i++ {
		pnls = append(pnls, float64(i), -float64(i))
	}
	v := VaR(pnls, 0.99)
	if v < 97 || v > 100 {
		t.Errorf("VaR(99%%) = %v, want ≈99", v)
	}
	es := ExpectedShortfall(pnls, 0.99)
	if es < v {
		t.Errorf("ES %v below VaR %v", es, v)
	}
	if VaR(nil, 0.99) != 0 || ExpectedShortfall(nil, 0.99) != 0 {
		t.Error("empty P&L should give 0")
	}
	// All-gain book has zero VaR.
	if VaR([]float64{1, 2, 3}, 0.9) != 0 {
		t.Error("gains produced positive VaR")
	}
}

func TestVaRPanicsOnBadAlpha(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	VaR([]float64{1}, 1.5)
}

// smallBook builds a tiny all-closed-form portfolio for live revaluation.
func smallBook() *portfolio.Portfolio {
	pf := &portfolio.Portfolio{Name: "book"}
	for i, k := range []float64{80, 90, 100, 110, 120} {
		pf.Items = append(pf.Items, portfolio.Item{
			Name:    "call-" + string(rune('a'+i)),
			Problem: callProblem(k),
			Cost:    0.001,
		})
	}
	return pf
}

func TestRevalueBaseMatchesDirect(t *testing.T) {
	pf := smallBook()
	val, err := Engine{Workers: 3}.Revalue(pf, SpotLadder())
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range pf.Items {
		res, err := it.Problem.Compute()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(val.Base[i]-res.Price) > 1e-12 {
			t.Errorf("%s: base %v vs direct %v", it.Name, val.Base[i], res.Price)
		}
	}
}

func TestRevalueMonotoneInSpot(t *testing.T) {
	// A book of long calls gains when spot rises and loses when it falls,
	// monotonically across the ladder.
	pf := smallBook()
	ladder := SpotLadder() // sorted ascending in spot
	val, err := Engine{Workers: 2}.Revalue(pf, ladder)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for s := range ladder {
		total := val.ScenarioTotal(s)
		if total < prev {
			t.Fatalf("call book value not monotone in spot: %v after %v (%s)", total, prev, ladder[s].Name)
		}
		prev = total
	}
	// Down scenarios lose, up scenarios gain.
	if val.PnL(0) >= 0 {
		t.Errorf("spot -20%% P&L %v not negative", val.PnL(0))
	}
	if val.PnL(len(ladder)-1) <= 0 {
		t.Errorf("spot +20%% P&L %v not positive", val.PnL(len(ladder)-1))
	}
}

func TestRevalueVolUpRaisesOptionBook(t *testing.T) {
	pf := smallBook()
	val, err := Engine{Workers: 2}.Revalue(pf, []Scenario{
		{Name: "vol+25", Shifts: []Shift{{Param: VolToken, Rel: 0.25}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if val.PnL(0) <= 0 {
		t.Errorf("long-option book P&L %v not positive under a vol spike", val.PnL(0))
	}
}

func TestRevalueDeterministicAcrossWorkerCounts(t *testing.T) {
	pf := smallBook()
	scens := StressScenarios()
	v1, err := Engine{Workers: 1}.Revalue(pf, scens)
	if err != nil {
		t.Fatal(err)
	}
	v4, err := Engine{Workers: 4, BatchSize: 2}.Revalue(pf, scens)
	if err != nil {
		t.Fatal(err)
	}
	for s := range scens {
		if math.Abs(v1.ScenarioTotal(s)-v4.ScenarioTotal(s)) > 1e-12 {
			t.Fatalf("scenario %d differs across worker counts", s)
		}
	}
}

func TestRevalueReport(t *testing.T) {
	pf := smallBook()
	val, err := Engine{Workers: 2}.Revalue(pf, StressScenarios())
	if err != nil {
		t.Fatal(err)
	}
	rep := val.Report(0.99)
	for _, want := range []string{"base portfolio value", "crash-20/vol+50", "VaR", "shortfall"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestPortfolioGreeks(t *testing.T) {
	pf := smallBook()
	g, err := Greeks(pf)
	if err != nil {
		t.Fatal(err)
	}
	if g.Value <= 0 {
		t.Errorf("book value %v", g.Value)
	}
	// Long calls: positive delta, gamma, vega; negative theta.
	if g.Delta <= 0 || g.Delta >= 5 {
		t.Errorf("book delta %v outside (0,5)", g.Delta)
	}
	if g.Gamma <= 0 || g.Vega <= 0 {
		t.Errorf("gamma %v / vega %v not positive", g.Gamma, g.Vega)
	}
	if g.Theta >= 0 {
		t.Errorf("book theta %v not negative", g.Theta)
	}
}

func TestRevalueMatchesGreeksFirstOrder(t *testing.T) {
	// For a 1% spot move the scenario P&L must match delta·ΔS to first
	// order (gamma correction bounds the error).
	pf := smallBook()
	g, err := Greeks(pf)
	if err != nil {
		t.Fatal(err)
	}
	val, err := Engine{Workers: 2}.Revalue(pf, []Scenario{
		{Name: "S+1%", Shifts: []Shift{{Param: "S0", Rel: 0.01}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := 1.0 // 1% of S0=100
	want := g.Delta*ds + 0.5*g.Gamma*ds*ds
	if diff := math.Abs(val.PnL(0) - want); diff > 0.02 {
		t.Errorf("P&L %v vs delta-gamma approx %v (diff %v)", val.PnL(0), want, diff)
	}
}

func TestRateTokenResolvesPerModel(t *testing.T) {
	sc := Scenario{Name: "r+100bp", Shifts: []Shift{{Param: RateToken, Abs: 0.01}}}
	eq, err := sc.Apply(callProblem(100))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eq.Params["r"]-0.05) > 1e-15 {
		t.Errorf("equity r = %v", eq.Params["r"])
	}
	vas := premia.New().SetAsset(premia.AssetRate).
		SetModel(premia.ModelVasicek).SetOption(premia.OptZCBond).SetMethod(premia.MethodCFVasicek).
		Set("r0", 0.03).Set("a", 0.5).Set("b", 0.05).Set("sigmaR", 0.01).Set("T", 2)
	vb, err := sc.Apply(vas)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vb.Params["r0"]-0.04) > 1e-15 {
		t.Errorf("Vasicek r0 = %v", vb.Params["r0"])
	}
}

func TestScenarioAppliesTo(t *testing.T) {
	spot := Scenario{Name: "s", Shifts: []Shift{{Param: "S0", Rel: 0.1}}}
	vol := Scenario{Name: "v", Shifts: []Shift{{Param: VolToken, Rel: 0.1}}}
	credit := premia.New().SetAsset(premia.AssetCredit).
		SetModel(premia.ModelConstHazard).SetOption(premia.OptCDS).SetMethod(premia.MethodCFCredit).
		Set("lambda", 0.02).Set("recovery", 0.4).Set("r", 0.03).Set("T", 5)
	if !spot.AppliesTo(callProblem(100)) {
		t.Error("spot ladder should apply to equity")
	}
	if spot.AppliesTo(credit) {
		t.Error("spot ladder should not apply to credit")
	}
	if vol.AppliesTo(credit) {
		t.Error("vol ladder should not apply to credit")
	}
}

func TestRevalueMixedBookSelective(t *testing.T) {
	pf := portfolio.Mixed(40)
	ladder := SpotLadder()[:3] // three spot scenarios
	val, err := Engine{Workers: 2}.Revalue(pf, ladder)
	if err != nil {
		t.Fatal(err)
	}
	// Rates and credit claims must hold their base values under the spot
	// ladder; equity claims must move.
	movedEquity := false
	for i, it := range pf.Items {
		class := strings.SplitN(it.Name, "-", 2)[0]
		for s := range ladder {
			if class == "eq" {
				if val.Values[s][i] != val.Base[i] {
					movedEquity = true
				}
			} else if val.Values[s][i] != val.Base[i] {
				t.Fatalf("%s moved under %s", it.Name, ladder[s].Name)
			}
		}
	}
	if !movedEquity {
		t.Fatal("no equity claim moved under the spot ladder")
	}
	// Rate shifts move every class (all carry a rate parameter).
	rates := RateShifts()[:1]
	val2, err := Engine{Workers: 2}.Revalue(pf, rates)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range pf.Items {
		if val2.Values[0][i] == val2.Base[i] {
			// Digitals near expiry may be rate-insensitive, but the
			// standard claims all move; require most of the book to move.
			_ = it
		}
	}
	moved := 0
	for i := range pf.Items {
		if val2.Values[0][i] != val2.Base[i] {
			moved++
		}
	}
	if moved < pf.Size()*3/4 {
		t.Fatalf("only %d of %d claims moved under a rate shift", moved, pf.Size())
	}
}
