package farm

import (
	"errors"
	"fmt"

	"riskbench/internal/nsp"
	"riskbench/internal/telemetry"
)

// Strategy selects how problems travel from master to worker; the values
// correspond to the columns of the paper's Tables II and III.
type Strategy int

// The three communication strategies of the paper.
const (
	FullLoad Strategy = iota
	NFSLoad
	SerializedLoad
)

// String returns the paper's label for the strategy.
func (s Strategy) String() string {
	switch s {
	case FullLoad:
		return "full load"
	case NFSLoad:
		return "NFS"
	case SerializedLoad:
		return "serialized load"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// NeedsPayload reports whether the master ships problem bytes itself
// (true) or lets the worker fetch them from the shared store (false).
func (s Strategy) NeedsPayload() bool { return s != NFSLoad }

// Message tags of the farm protocol.
const (
	// TagTask carries a batch descriptor (names, costs, sizes); an empty
	// batch tells the worker to stop, like the paper's [''] message.
	TagTask = 1
	// TagPayload carries the batch's problem payloads as a list of
	// serials (FullLoad and SerializedLoad only).
	TagPayload = 2
	// TagResult carries the batch's results back as a list of hashes.
	TagResult = 3
)

// Task is one pricing job of the portfolio.
type Task struct {
	// Name identifies the task; under NFSLoad it is the path the worker
	// reads from the shared store.
	Name string
	// Data is the problem's save-file content (nsp-serialized stream).
	Data []byte
	// Cost is the task's virtual compute time in seconds, used by
	// simulated executors; live executors ignore it.
	Cost float64
}

// Result is one priced task as collected by the master.
type Result struct {
	// Name echoes the task name.
	Name string
	// Worker is the rank that computed the task.
	Worker int
	// Value is the result object produced by the worker's Executor (the
	// error-report hash when Err is set).
	Value nsp.Object
	// Err holds the worker-side pricing error, if the task failed on
	// every attempt.
	Err error
}

// Options configures a farm run.
type Options struct {
	// Strategy selects the communication strategy (default FullLoad).
	Strategy Strategy
	// BatchSize groups this many tasks per message exchange (default 1,
	// the paper's setting; larger values implement the latency
	// amortisation proposed in the conclusion).
	BatchSize int
	// MasterRank is the rank workers talk to (default 0); sub-masters in
	// a hierarchy override it.
	MasterRank int
	// MaxRetries is how many times the master re-farms a task whose
	// pricing failed on a worker (each retry goes to whichever worker is
	// free, usually a different one). Tasks failing every attempt come
	// back with Result.Err set. Transport and protocol errors are always
	// fatal regardless of this setting.
	MaxRetries int
	// Telemetry, when non-nil, receives the farm's metrics and spans:
	// queue-wait/serialize/task-latency histograms and per-task spans on
	// the master, fetch/compute histograms and spans on workers, and
	// per-worker busy gauges. Durations are read off the registry clock,
	// so a registry bound to a simulation clock records virtual seconds.
	// Nil (the default) disables instrumentation entirely.
	Telemetry *telemetry.Registry
}

func (o Options) batchSize() int {
	if o.BatchSize < 1 {
		return 1
	}
	return o.BatchSize
}

// descriptor field keys.
const (
	descNames = "names"
	descCosts = "costs"
	descSizes = "sizes"
)

// encodeBatch builds the descriptor hash for a batch of tasks. An empty
// batch is the stop message.
func encodeBatch(tasks []Task) *nsp.Hash {
	k := len(tasks)
	names := nsp.NewSMat(1, k)
	costs := nsp.NewMat(1, k)
	sizes := nsp.NewMat(1, k)
	for i, t := range tasks {
		names.Data[i] = t.Name
		costs.Data[i] = t.Cost
		sizes.Data[i] = float64(len(t.Data))
	}
	h := nsp.NewHash()
	h.Set(descNames, names)
	h.Set(descCosts, costs)
	h.Set(descSizes, sizes)
	return h
}

// decodeBatch parses a descriptor hash back into task stubs (Data is not
// carried by the descriptor; sizes preserve the payload byte counts).
func decodeBatch(o nsp.Object) (names []string, costs, sizes []float64, err error) {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return nil, nil, nil, fmt.Errorf("farm: descriptor is %v, want hash", o.Kind())
	}
	nv, ok1 := h.Get(descNames)
	cv, ok2 := h.Get(descCosts)
	sv, ok3 := h.Get(descSizes)
	if !ok1 || !ok2 || !ok3 {
		return nil, nil, nil, errors.New("farm: descriptor missing fields")
	}
	nm, ok1 := nv.(*nsp.SMat)
	cm, ok2 := cv.(*nsp.Mat)
	sm, ok3 := sv.(*nsp.Mat)
	if !ok1 || !ok2 || !ok3 {
		return nil, nil, nil, errors.New("farm: descriptor fields have wrong types")
	}
	k := len(nm.Data)
	if len(cm.Data) != k || len(sm.Data) != k {
		return nil, nil, nil, errors.New("farm: descriptor field lengths disagree")
	}
	return nm.Data, cm.Data, sm.Data, nil
}

// resultHash builds the standard result object returned by executors.
func resultHash(name string, price, ci, delta, work float64) *nsp.Hash {
	h := nsp.NewHash()
	h.Set("name", nsp.Str(name))
	h.Set("price", nsp.Scalar(price))
	h.Set("priceCI", nsp.Scalar(ci))
	h.Set("delta", nsp.Scalar(delta))
	h.Set("work", nsp.Scalar(work))
	return h
}

// errorResultHash builds the result object reporting a pricing failure.
func errorResultHash(name, msg string) *nsp.Hash {
	h := nsp.NewHash()
	h.Set("name", nsp.Str(name))
	h.Set("error", nsp.Str(msg))
	return h
}

// resultError extracts the failure message from a result object, if any.
func resultError(o nsp.Object) (string, bool) {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return "", false
	}
	v, ok := h.Get("error")
	if !ok {
		return "", false
	}
	s, ok := v.(*nsp.SMat)
	if !ok || s.Rows != 1 || s.Cols != 1 {
		return "", false
	}
	return s.StrValue(), true
}

// ResultField extracts a scalar field from a result object collected by
// the master, with a presence flag.
func ResultField(r Result, field string) (float64, bool) {
	h, ok := r.Value.(*nsp.Hash)
	if !ok {
		return 0, false
	}
	v, ok := h.Get(field)
	if !ok {
		return 0, false
	}
	m, ok := v.(*nsp.Mat)
	if !ok || m.Rows != 1 || m.Cols != 1 {
		return 0, false
	}
	return m.ScalarValue(), true
}

// resultName extracts the echoed task name from a result object.
func resultName(o nsp.Object) (string, error) {
	h, ok := o.(*nsp.Hash)
	if !ok {
		return "", fmt.Errorf("farm: result is %v, want hash", o.Kind())
	}
	v, ok := h.Get("name")
	if !ok {
		return "", errors.New("farm: result missing name")
	}
	s, ok := v.(*nsp.SMat)
	if !ok || s.Rows != 1 || s.Cols != 1 {
		return "", errors.New("farm: result name is not a string")
	}
	return s.StrValue(), nil
}
