package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Collective operations built on the point-to-point primitives, in the
// spirit of the Nsp MPI toolbox exposing "mainly all MPI-2 functions".
// Every rank of the communicator must call the same collective with the
// same root for the operation to complete. The implementations use
// binomial trees where it matters, so depth grows as log₂(size).
//
// A reserved tag namespace (high values) keeps collective traffic from
// colliding with application tags.
const (
	tagBcast   = 1 << 20
	tagBarrier = 1<<20 + 1
	tagGather  = 1<<20 + 2
	tagReduce  = 1<<20 + 3
	tagScatter = 1<<20 + 4
)

// vrank maps a rank into the rotated space where the root is 0.
func vrank(rank, root, size int) int { return (rank - root + size) % size }

// prank maps back from rotated space to physical ranks.
func prank(v, root, size int) int { return (v + root) % size }

// Bcast distributes data from root to every rank along a binomial tree.
// On the root, data is the payload to send; on other ranks its content is
// ignored and the received payload is returned. Every rank returns the
// broadcast bytes.
func Bcast(c Comm, data []byte, root int) ([]byte, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: bcast root %d out of range", root)
	}
	v := vrank(c.Rank(), root, size)
	if v != 0 {
		// Receive from the parent: clear the lowest set bit.
		parent := v & (v - 1)
		got, _, err := c.Recv(prank(parent, root, size), tagBcast)
		if err != nil {
			return nil, err
		}
		data = got
	}
	// Forward to children: set bits above the lowest set bit of v.
	for bit := 1; bit < size; bit <<= 1 {
		if v&bit != 0 {
			break
		}
		child := v | bit
		if child < size {
			if err := c.Send(data, prank(child, root, size), tagBcast); err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

// Barrier blocks until every rank has entered it, using a gather-to-0
// then broadcast-from-0 of empty messages.
func Barrier(c Comm) error {
	size := c.Size()
	if size == 1 {
		return nil
	}
	if c.Rank() == 0 {
		for i := 1; i < size; i++ {
			if _, _, err := c.Recv(AnySource, tagBarrier); err != nil {
				return err
			}
		}
		for i := 1; i < size; i++ {
			if err := c.Send(nil, i, tagBarrier); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(nil, 0, tagBarrier); err != nil {
		return err
	}
	_, _, err := c.Recv(0, tagBarrier)
	return err
}

// Gather collects each rank's data at the root. The root receives a slice
// indexed by rank (its own contribution included); other ranks receive
// nil.
func Gather(c Comm, data []byte, root int) ([][]byte, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: gather root %d out of range", root)
	}
	if c.Rank() != root {
		return nil, c.Send(data, root, tagGather)
	}
	out := make([][]byte, size)
	cp := make([]byte, len(data))
	copy(cp, data)
	out[root] = cp
	for i := 0; i < size-1; i++ {
		got, st, err := c.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		out[st.Source] = got
	}
	return out, nil
}

// Scatter sends parts[i] to rank i from the root and returns this rank's
// part. On non-root ranks, parts is ignored. len(parts) must equal the
// communicator size on the root.
func Scatter(c Comm, parts [][]byte, root int) ([]byte, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: scatter root %d out of range", root)
	}
	if c.Rank() == root {
		if len(parts) != size {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", size, len(parts))
		}
		for i, p := range parts {
			if i == root {
				continue
			}
			if err := c.Send(p, i, tagScatter); err != nil {
				return nil, err
			}
		}
		cp := make([]byte, len(parts[root]))
		copy(cp, parts[root])
		return cp, nil
	}
	got, _, err := c.Recv(root, tagScatter)
	return got, err
}

// ReduceOp combines two float64 values in Reduce.
type ReduceOp func(a, b float64) float64

// Predefined reduction operators.
var (
	// OpSum adds.
	OpSum ReduceOp = func(a, b float64) float64 { return a + b }
	// OpMax keeps the maximum.
	OpMax ReduceOp = math.Max
	// OpMin keeps the minimum.
	OpMin ReduceOp = math.Min
)

// Reduce element-wise combines each rank's vector with op along a
// binomial tree rooted at root. All vectors must have the same length;
// only the root's returned slice is meaningful (others get nil).
func Reduce(c Comm, vec []float64, op ReduceOp, root int) ([]float64, error) {
	size := c.Size()
	if root < 0 || root >= size {
		return nil, fmt.Errorf("mpi: reduce root %d out of range", root)
	}
	v := vrank(c.Rank(), root, size)
	acc := make([]float64, len(vec))
	copy(acc, vec)
	// Children send up the binomial tree: at each round, ranks with the
	// current bit set send to their parent and exit.
	for bit := 1; bit < size; bit <<= 1 {
		if v&bit != 0 {
			parent := v &^ bit
			if err := c.Send(encodeFloats(acc), prank(parent, root, size), tagReduce); err != nil {
				return nil, err
			}
			return nil, nil
		}
		child := v | bit
		if child < size {
			data, _, err := c.Recv(prank(child, root, size), tagReduce)
			if err != nil {
				return nil, err
			}
			other, err := decodeFloats(data)
			if err != nil {
				return nil, err
			}
			if len(other) != len(acc) {
				return nil, fmt.Errorf("mpi: reduce length mismatch: %d vs %d", len(other), len(acc))
			}
			for i := range acc {
				acc[i] = op(acc[i], other[i])
			}
		}
	}
	return acc, nil
}

// AllReduce is Reduce to rank 0 followed by Bcast, so every rank gets the
// combined vector.
func AllReduce(c Comm, vec []float64, op ReduceOp) ([]float64, error) {
	acc, err := Reduce(c, vec, op, 0)
	if err != nil {
		return nil, err
	}
	var payload []byte
	if c.Rank() == 0 {
		payload = encodeFloats(acc)
	}
	data, err := Bcast(c, payload, 0)
	if err != nil {
		return nil, err
	}
	return decodeFloats(data)
}

func encodeFloats(vec []float64) []byte {
	out := make([]byte, 8*len(vec))
	for i, v := range vec {
		binary.BigEndian.PutUint64(out[8*i:], math.Float64bits(v))
	}
	return out
}

func decodeFloats(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("mpi: float vector payload of %d bytes", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(data[8*i:]))
	}
	return out, nil
}
