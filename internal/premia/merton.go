package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// ModelMerton is Merton's jump-diffusion model, the simplest of the Lévy
// models Premia ships: Black–Scholes dynamics plus compound-Poisson
// lognormal jumps.
const ModelMerton = "Merton1dim"

// Merton-specific method names.
const (
	// MethodCFMerton prices European calls/puts by Merton's conditioning
	// series (a Poisson mixture of Black–Scholes prices).
	MethodCFMerton = "CF_Merton"
	// MethodMCMerton simulates the jump diffusion exactly at maturity.
	MethodMCMerton = "MC_Merton"
)

// mertonParams are the jump-diffusion parameters: diffusion volatility
// sigma plus jump intensity lambda and lognormal jump sizes
// ln J ~ N(muJ, sigmaJ²).
type mertonParams struct {
	S0, R, Div, Sigma   float64
	Lambda, MuJ, SigmaJ float64
}

func mertonFrom(p *Problem) (mertonParams, error) {
	var m mertonParams
	base, err := bsFrom(p)
	if err != nil {
		return m, err
	}
	m.S0, m.R, m.Div, m.Sigma = base.S0, base.R, base.Div, base.Sigma
	if m.Lambda, err = p.Params.NeedPositive("lambda"); err != nil {
		return m, err
	}
	m.MuJ = p.Params.Get("muJ", 0)
	m.SigmaJ = p.Params.Get("sigmaJ", 0)
	if m.SigmaJ < 0 {
		return m, fmt.Errorf("premia: sigmaJ must be >= 0, got %v", m.SigmaJ)
	}
	return m, nil
}

// kbar returns E[J−1], the expected relative jump size, which enters the
// drift compensator.
func (m mertonParams) kbar() float64 {
	return math.Exp(m.MuJ+0.5*m.SigmaJ*m.SigmaJ) - 1
}

// mertonSeriesTerms bounds the Poisson series; with weights decaying
// factorially, 60 terms cover any realistic λT at double precision.
const mertonSeriesTerms = 60

// cfMerton implements CF_Merton: conditioning on the number of jumps N=n,
// the price is Σ P(N=n)·BS(σ_n, r_n) with
//
//	σ_n² = σ² + n·σJ²/T,
//	r_n  = r − λk̄ + n·ln(1+k̄)/T.
func cfMerton(p *Problem) (Result, error) {
	m, err := mertonFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	isCall := p.Option == OptCallEuro
	kb := m.kbar()
	lambdaP := m.Lambda * (1 + kb) // intensity under the jump-size tilt
	price, delta := 0.0, 0.0
	weight := math.Exp(-lambdaP * o.T)
	for n := 0; n < mertonSeriesTerms; n++ {
		if n > 0 {
			weight *= lambdaP * o.T / float64(n)
		}
		sigmaN := math.Sqrt(m.Sigma*m.Sigma + float64(n)*m.SigmaJ*m.SigmaJ/o.T)
		rN := m.R - m.Lambda*kb + float64(n)*math.Log(1+kb)/o.T
		bs := bsParams{S0: m.S0, R: rN, Div: m.Div, Sigma: sigmaN}
		var pn, dn float64
		if isCall {
			pn, dn = bsCallPrice(bs, o.K, o.T)
		} else {
			pn, dn = bsPutPrice(bs, o.K, o.T)
		}
		// Each term is a complete Black–Scholes price at rate rN (drift
		// and discounting both), per Merton's original series.
		price += weight * pn
		delta += weight * dn
	}
	return Result{Price: price, Delta: delta, HasDelta: true, Work: mertonSeriesTerms}, nil
}

// mcMerton implements MC_Merton: exact terminal sampling of the jump
// diffusion (Gaussian diffusion + Poisson number of lognormal jumps).
// Parameters: "paths".
func mcMerton(p *Problem) (Result, error) {
	m, err := mertonFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	if paths < 2 {
		return Result{}, fmt.Errorf("premia: MC_Merton needs paths >= 2")
	}
	isCall := p.Option == OptCallEuro
	rng := mathutil.NewRNG(mcSeed(p))
	kb := m.kbar()
	drift := (m.R - m.Div - m.Lambda*kb - 0.5*m.Sigma*m.Sigma) * o.T
	vol := m.Sigma * math.Sqrt(o.T)
	df := math.Exp(-m.R * o.T)
	meanJumps := m.Lambda * o.T
	var w mathutil.Welford
	for i := 0; i < paths; i++ {
		x := drift + vol*rng.Norm()
		n := poisson(rng, meanJumps)
		if n > 0 {
			x += float64(n)*m.MuJ + m.SigmaJ*math.Sqrt(float64(n))*rng.Norm()
		}
		st := m.S0 * math.Exp(x)
		var pay float64
		if isCall {
			pay = payoffCall(st, o.K)
		} else {
			pay = payoffPut(st, o.K)
		}
		w.Add(df * pay)
	}
	return Result{
		Price: w.Mean(), PriceCI: w.HalfWidth95(),
		Work: float64(paths),
	}, nil
}

// poisson draws a Poisson variate by Knuth's product method for small
// means and a Gaussian approximation with continuity correction above 30
// (ample for λT in pricing contexts).
func poisson(rng *mathutil.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(mean + math.Sqrt(mean)*rng.Norm() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	n := 0
	prod := rng.Float64()
	for prod > limit {
		n++
		prod *= rng.Float64()
	}
	return n
}
