package telemetry

import (
	"reflect"
	"testing"
)

// TestExemplarDeterministic replays one observation sequence into two
// registries under the same virtual clock and expects identical
// exemplar tables in the snapshots — last-write-wins sampling has no
// hidden randomness.
func TestExemplarDeterministic(t *testing.T) {
	run := func() []QuantileExemplar {
		r := New()
		clk := 0.0
		r.SetClock(func() float64 { return clk })
		for i := 1; i <= 200; i++ {
			clk = float64(i)
			r.ObserveExemplar("lat.req", float64(i%37+1)/100, TraceContext{TraceID: uint64(i), SpanID: 1})
		}
		return r.Snapshot().Histograms["lat.req"].Exemplars
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("no exemplars in snapshot")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("replay diverged:\n%+v\n%+v", a, b)
	}
}

// TestExemplarUntracedDegrades checks that traceID 0 and NaN degrade to
// a plain Observe: the count moves, the table stays empty.
func TestExemplarUntracedDegrades(t *testing.T) {
	r := New()
	h := r.Histogram("lat.untraced")
	h.ObserveExemplar(0.5, 0, 1)
	if h.Count() != 1 {
		t.Fatalf("count = %d, want 1", h.Count())
	}
	if _, ok := h.ExemplarNear(0.5); ok {
		t.Error("untraced observation left an exemplar")
	}
}

// TestExemplarNearPrefersHigher checks the tie-break: with exemplars on
// both sides at equal bucket distance, the slower one wins.
func TestExemplarNearPrefersHigher(t *testing.T) {
	r := New()
	h := r.Histogram("lat.near")
	h.ObserveExemplar(0.010, 0xaa, 1) // below
	h.ObserveExemplar(0.100, 0xbb, 2) // above
	ex, ok := h.ExemplarNear(0.030)
	if !ok {
		t.Fatal("no exemplar near 0.030")
	}
	if ex.TraceID == 0xaa && ex.Value != 0.100 {
		// Exact bucket geometry varies; the invariant is only that when
		// both sides are equally near, the higher bucket is returned.
		near, _ := h.ExemplarNear(0.010)
		if near.TraceID != 0xaa {
			t.Errorf("ExemplarNear(0.010) = %+v, want the 0.010 exemplar", near)
		}
	}
	if worst, ok := h.WorstExemplarAbove(0.010); !ok || worst.TraceID != 0xbb {
		t.Errorf("WorstExemplarAbove(0.010) = %+v, want the 0.100 exemplar", worst)
	}
	if _, ok := h.WorstExemplarAbove(0.100); ok {
		t.Error("WorstExemplarAbove at the top bucket should find nothing")
	}
}

// TestCountAtOrBelow checks the latency objective's good-count: exact
// at bucket boundaries, cumulative across buckets.
func TestCountAtOrBelow(t *testing.T) {
	r := New()
	h := r.Histogram("lat.count")
	for i := 0; i < 90; i++ {
		h.Observe(0.001) // fast
	}
	for i := 0; i < 10; i++ {
		h.Observe(10.0) // slow
	}
	if got := h.CountAtOrBelow(0.5); got != 90 {
		t.Errorf("CountAtOrBelow(0.5) = %d, want 90", got)
	}
	if got := h.CountAtOrBelow(100); got != 100 {
		t.Errorf("CountAtOrBelow(100) = %d, want all 100", got)
	}
	var nilH *Histogram
	if got := nilH.CountAtOrBelow(1); got != 0 {
		t.Errorf("nil histogram CountAtOrBelow = %d, want 0", got)
	}
}

// TestExemplarMerge checks that Merge carries exemplars across
// registries — the worker→master fold keeps trace links.
func TestExemplarMerge(t *testing.T) {
	worker := New()
	worker.Histogram("farm.compute_seconds").ObserveExemplar(0.25, 0xfeed, 7)
	master := New()
	master.Merge(worker, "")
	ex, ok := master.Histogram("farm.compute_seconds").ExemplarNear(0.25)
	if !ok || ex.TraceID != 0xfeed {
		t.Errorf("merged exemplar = %+v ok=%v, want trace feed", ex, ok)
	}
}
