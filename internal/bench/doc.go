// Package bench reproduces the paper's evaluation: it sweeps a portfolio
// over CPU counts and communication strategies on the simulated cluster
// and prints tables in the paper's format (computation time and speedup
// ratio per CPU count).
//
// The speedup ratio follows the paper's convention, with the 2-CPU run
// (one master + one worker) as the baseline:
//
//	ratio(n) = T(2) / ((n−1) · T(n))
//
// which is 1 for perfect scaling of the n−1 workers (verified against the
// published tables: e.g. Table I, 4 CPUs: 838.004/(3·285.356) = 0.9789).
//
// Three predefined specs regenerate Tables I, II and III; further specs
// cover the ablations called out in DESIGN.md (static vs Robin-Hood
// scheduling, batching, hierarchy, compressed serials).
package bench
