package premia

import "testing"

func ckProblem() *Problem {
	return New().
		SetModel(ModelBS1D).
		SetOption(OptCallEuro).
		SetMethod(MethodCFCall).
		Set("S0", 100).Set("r", 0.05).Set("sigma", 0.2).
		Set("K", 100).Set("T", 1)
}

func TestContentKeyDeterministic(t *testing.T) {
	a, b := ckProblem(), ckProblem()
	if a.ContentKey() != b.ContentKey() {
		t.Fatal("identical problems hash differently")
	}
	if got := a.Clone().ContentKey(); got != a.ContentKey() {
		t.Fatal("clone hashes differently")
	}
	if len(a.ContentKey()) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(a.ContentKey()))
	}
}

func TestContentKeyInsertionOrderIrrelevant(t *testing.T) {
	a := New().SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall).
		Set("S0", 100).Set("K", 90)
	b := New().SetModel(ModelBS1D).SetOption(OptCallEuro).SetMethod(MethodCFCall).
		Set("K", 90).Set("S0", 100)
	if a.ContentKey() != b.ContentKey() {
		t.Fatal("parameter insertion order changed the key")
	}
}

func TestContentKeySensitivity(t *testing.T) {
	base := ckProblem().ContentKey()
	cases := map[string]*Problem{
		"param value":  ckProblem().Set("K", 101),
		"extra param":  ckProblem().Set("q", 0.01),
		"method":       ckProblem().SetMethod(MethodMCEuro),
		"option":       ckProblem().SetOption(OptPutEuro),
		"seed":         ckProblem().Set("seed", 42),
		"64-bit seed":  ckProblem().SetSeed(1 << 40),
		"64-bit seed2": ckProblem().SetSeed(1<<40 + 1),
	}
	seen := map[string]string{"base": base}
	for name, p := range cases {
		k := p.ContentKey()
		for prev, pk := range seen {
			if k == pk {
				t.Fatalf("%q collides with %q", name, prev)
			}
		}
		seen[name] = k
	}
}

// The kernel thread count never changes a price (the shard decomposition
// is thread-invariant), so it must not change the content address either:
// a warm cache entry priced on 8 threads serves the serial request.
func TestContentKeyIgnoresThreads(t *testing.T) {
	if ckProblem().ContentKey() != ckProblem().Set("threads", 8).ContentKey() {
		t.Fatal("threads parameter changed the content key")
	}
}
