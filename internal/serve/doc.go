// Package serve turns the benchmark's pricing engine into a long-lived
// production service: an HTTP/JSON front end that keeps the parallel
// kernel saturated, the step the paper's one-shot batch runs stop short
// of.
//
// Three mechanisms sit between the socket and the farm:
//
//   - a dynamic micro-batcher that coalesces concurrent single-problem
//     requests into farm batches (flush on max batch size or max delay —
//     the same bunching lever as the farm's BatchSize), so point lookups
//     ride the Robin-Hood hot path together with portfolio sweeps;
//   - a sharded, content-addressed result cache keyed by
//     premia.Problem.ContentKey, with singleflight suppression of
//     duplicate in-flight prices and LRU eviction per shard;
//   - admission control and lifecycle: a bounded request queue that
//     answers 429 + Retry-After on overload instead of collapsing,
//     per-request deadlines via context, /healthz and /metrics
//     endpoints, and a graceful drain that lets in-flight farm batches
//     finish before the process exits.
//
// All serving metrics live under the "serve." prefix in the telemetry
// registry: serve.requests, serve.rejected, serve.request_seconds,
// serve.inflight, serve.cache.{hits,misses,evictions,entries},
// serve.singleflight.shared and serve.batch.{size,flush_size,flush_delay}.
package serve
