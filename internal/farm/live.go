package farm

import (
	"fmt"
	"os"

	"riskbench/internal/nsp"
	"riskbench/internal/premia"
)

// LiveLoader prepares payloads with real CPU work, matching the paper's
// description of each strategy on the master.
type LiveLoader struct{}

// Load implements Loader. FullLoad performs the complete round — decode
// the save-file stream into an object, then re-serialise it — whose cost
// the serialized-load strategy exists to avoid; SerializedLoad is the
// sload path that ships the file bytes untouched. An object-only task
// (Obj set, no Data) reaching the loader means the communicator cannot
// pass references, so the object is serialized here as the wire
// fallback.
func (LiveLoader) Load(t Task, s Strategy) ([]byte, error) {
	if t.Data == nil && t.Obj != nil {
		ser, err := nsp.Serialize(t.Obj)
		if err != nil {
			return nil, fmt.Errorf("farm: serialize task object: %w", err)
		}
		return ser.Data, nil
	}
	switch s {
	case FullLoad:
		obj, err := nsp.SLoadBytes(t.Data).Unserialize()
		if err != nil {
			return nil, fmt.Errorf("farm: full load decode: %w", err)
		}
		ser, err := nsp.Serialize(obj)
		if err != nil {
			return nil, fmt.Errorf("farm: full load encode: %w", err)
		}
		return ser.Data, nil
	case SerializedLoad:
		return t.Data, nil
	default:
		return nil, fmt.Errorf("farm: loader asked for strategy %v", s)
	}
}

// LiveExecutor prices tasks for real with the premia library.
type LiveExecutor struct{}

// Execute implements Executor: unserialize → rebuild the problem →
// compute → result hash. The executor does not read a clock; RunWorker
// measures the call on the registry clock and stamps the elapsed
// compute time into the hash under "seconds", so masters can attribute
// timing to task groups (the risk engine's per-scenario report reads
// it) and simulated runs attribute virtual seconds.
func (LiveExecutor) Execute(name string, payload []byte, cost float64, size int) (nsp.Object, error) {
	obj, err := nsp.SLoadBytes(payload).Unserialize()
	if err != nil {
		return nil, fmt.Errorf("farm: decode problem %q: %w", name, err)
	}
	p, err := premia.FromNsp(obj)
	if err != nil {
		return nil, fmt.Errorf("farm: rebuild problem %q: %w", name, err)
	}
	res, err := p.Compute()
	if err != nil {
		return nil, fmt.Errorf("farm: compute %q: %w", name, err)
	}
	h := resultHash(name, res.Price, res.PriceCI, res.Delta, res.Work)
	// hasdelta distinguishes "delta is 0" from "method computes no delta",
	// so consumers rebuilding a premia.Result (the serving layer's cache)
	// keep full fidelity.
	if res.HasDelta {
		h.Set("hasdelta", nsp.Scalar(1))
	}
	return h, nil
}

// ExecuteObj implements ObjExecutor: the problem arrived by reference,
// so pricing skips the decode pass entirely — rebuild → compute →
// result hash.
func (LiveExecutor) ExecuteObj(name string, obj nsp.Object, cost float64, size int) (nsp.Object, error) {
	p, err := premia.FromNsp(obj)
	if err != nil {
		return nil, fmt.Errorf("farm: rebuild problem %q: %w", name, err)
	}
	res, err := p.Compute()
	if err != nil {
		return nil, fmt.Errorf("farm: compute %q: %w", name, err)
	}
	h := resultHash(name, res.Price, res.PriceCI, res.Delta, res.Work)
	if res.HasDelta {
		h.Set("hasdelta", nsp.Scalar(1))
	}
	return h, nil
}

// FileStore reads problem files from the real file system (the live
// counterpart of the cluster's NFS mount).
type FileStore struct{}

// Read implements Store.
func (FileStore) Read(name string, size int) ([]byte, error) {
	return os.ReadFile(name)
}

// MemStore serves problem bytes from memory; examples and tests use it as
// a stand-in shared file system without touching disk.
type MemStore map[string][]byte

// Read implements Store.
func (m MemStore) Read(name string, size int) ([]byte, error) {
	data, ok := m[name]
	if !ok {
		return nil, fmt.Errorf("farm: memstore: no file %q", name)
	}
	return data, nil
}
