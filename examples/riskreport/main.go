// Daily risk run: the paper's motivating workload end-to-end. A book of
// equity derivatives is revalued under spot/vol ladders and stress
// scenarios on the parallel farm, and the report shows scenario P&L,
// value-at-risk, expected shortfall and aggregated greeks — the numbers a
// bank hands to its risk control organism every morning.
package main

import (
	"fmt"
	"log"
	"runtime"

	"riskbench/internal/portfolio"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
)

func main() {
	// A small mixed book: vanilla calls, puts, barriers and digitals at
	// several strikes (closed-form methods so the demo runs instantly).
	book := &portfolio.Portfolio{Name: "demo-book"}
	add := func(name string, p *premia.Problem) {
		book.Items = append(book.Items, portfolio.Item{Name: name, Problem: p, Cost: 0.001})
	}
	for _, k := range []float64{90, 100, 110} {
		add(fmt.Sprintf("call-%g", k), premia.New().
			SetModel(premia.ModelBS1D).SetOption(premia.OptCallEuro).SetMethod(premia.MethodCFCall).
			Set("S0", 100).Set("r", 0.04).Set("divid", 0.01).Set("sigma", 0.22).
			Set("K", k).Set("T", 1))
		add(fmt.Sprintf("put-%g", k), premia.New().
			SetModel(premia.ModelBS1D).SetOption(premia.OptPutEuro).SetMethod(premia.MethodCFPut).
			Set("S0", 100).Set("r", 0.04).Set("divid", 0.01).Set("sigma", 0.22).
			Set("K", k).Set("T", 0.5))
	}
	add("barrier-95", premia.New().
		SetModel(premia.ModelBS1D).SetOption(premia.OptCallDownOut).SetMethod(premia.MethodCFCallDownOut).
		Set("S0", 100).Set("r", 0.04).Set("sigma", 0.22).
		Set("K", 100).Set("T", 1).Set("L", 80))
	add("digital-105", premia.New().
		SetModel(premia.ModelBS1D).SetOption(premia.OptDigitalCall).SetMethod(premia.MethodCFDigital).
		Set("S0", 100).Set("r", 0.04).Set("sigma", 0.22).
		Set("K", 105).Set("T", 1))

	// Scenario set: spot ladder + vol ladder + rate shifts + stresses —
	// the "various values of these model parameters" of the paper's
	// introduction.
	var scenarios []risk.Scenario
	scenarios = append(scenarios, risk.SpotLadder()...)
	scenarios = append(scenarios, risk.VolLadder()...)
	scenarios = append(scenarios, risk.RateShifts()...)
	scenarios = append(scenarios, risk.StressScenarios()...)

	eng := risk.Engine{Workers: runtime.NumCPU()}
	fmt.Printf("revaluing %d claims × %d scenarios (%d atomic computations) on %d workers\n\n",
		book.Size(), len(scenarios), book.Size()*(len(scenarios)+1), eng.Workers)
	val, err := eng.Revalue(book, scenarios)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(val.Report(0.95))

	greeks, err := risk.Greeks(book)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("book greeks: delta %.3f  gamma %.4f  vega %.2f  theta %.2f  rho %.2f\n",
		greeks.Delta, greeks.Gamma, greeks.Vega, greeks.Theta, greeks.Rho)
}
