package nsp

// Additional object kinds: integer matrices and cells ("non sparse
// matrices, cells, lists and hash tables" is the paper's list of types
// MPI_Send handles directly).
const (
	// KindIMat is a dense integer matrix.
	KindIMat Kind = 7
	// KindCells is a two-dimensional array of arbitrary objects.
	KindCells Kind = 8
)

// IMat is a dense int64 matrix stored row-major.
type IMat struct {
	Rows, Cols int
	Data       []int64
}

// NewIMat returns a zero-filled rows×cols integer matrix.
func NewIMat(rows, cols int) *IMat {
	if rows < 0 || cols < 0 {
		panic("nsp: negative matrix dimension")
	}
	return &IMat{Rows: rows, Cols: cols, Data: make([]int64, rows*cols)}
}

// IntScalar returns a 1×1 integer matrix holding v.
func IntScalar(v int64) *IMat {
	return &IMat{Rows: 1, Cols: 1, Data: []int64{v}}
}

// Kind implements Object.
func (m *IMat) Kind() Kind { return KindIMat }

// At returns the element at row i, column j.
func (m *IMat) At(i, j int) int64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *IMat) Set(i, j int, v int64) { m.Data[i*m.Cols+j] = v }

// Equal implements Object.
func (m *IMat) Equal(o Object) bool {
	n, ok := o.(*IMat)
	if !ok || m.Rows != n.Rows || m.Cols != n.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != n.Data[i] {
			return false
		}
	}
	return true
}

// Cells is a rows×cols array of objects; entries may be nil (empty cell).
type Cells struct {
	Rows, Cols int
	Data       []Object
}

// NewCells returns an empty-celled rows×cols array.
func NewCells(rows, cols int) *Cells {
	if rows < 0 || cols < 0 {
		panic("nsp: negative cells dimension")
	}
	return &Cells{Rows: rows, Cols: cols, Data: make([]Object, rows*cols)}
}

// Kind implements Object.
func (c *Cells) Kind() Kind { return KindCells }

// At returns the object at row i, column j (nil if empty).
func (c *Cells) At(i, j int) Object { return c.Data[i*c.Cols+j] }

// Set assigns the object at row i, column j.
func (c *Cells) Set(i, j int, o Object) { c.Data[i*c.Cols+j] = o }

// Equal implements Object.
func (c *Cells) Equal(o Object) bool {
	d, ok := o.(*Cells)
	if !ok || c.Rows != d.Rows || c.Cols != d.Cols {
		return false
	}
	for i, v := range c.Data {
		w := d.Data[i]
		if (v == nil) != (w == nil) {
			return false
		}
		if v != nil && !v.Equal(w) {
			return false
		}
	}
	return true
}
