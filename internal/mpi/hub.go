package mpi

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"riskbench/internal/telemetry"
)

// wireMagic opens every handshake so stray connections are rejected
// early. It is the same six bytes for every protocol version — version
// negotiation happens after the magic, over control frames a v1 peer
// cannot see — so any worker can join any hub.
const wireMagic = "RBMPI1"

// defaultHelloWait bounds how long a v2 hub waits for a worker's hello
// before concluding the worker is a v1 build. A v2 worker answers the
// hub's hello immediately, so the wait is only ever paid once per
// genuinely-old worker at connection setup.
const defaultHelloWait = 500 * time.Millisecond

// WorldOptions configures a hub or worker endpoint: which transport
// carries the frames and which protocol version this endpoint speaks.
// The zero value is a current-version TCP endpoint.
type WorldOptions struct {
	// Transport names a registered transport ("tcp", "unix", "inproc");
	// empty selects tcp.
	Transport string
	// Proto is the protocol version this endpoint speaks (ProtoV1 or
	// ProtoV2); 0 selects ProtoLatest. A ProtoV1 endpoint reproduces the
	// pre-versioning wire behaviour exactly — the compatibility matrix
	// pins old↔new pairs with it.
	Proto int
	// Caps is the capability set to announce; 0 with Proto unset (or
	// >= ProtoV2) announces AllCaps. ProtoV1 endpoints announce nothing
	// — v1 had no way to — and are assumed AllCaps by other v1 peers,
	// which is exactly the implicit contract versioning replaces.
	Caps CapSet
	// HelloWait bounds the hub's wait for a worker hello during
	// classification (default 500ms). Workers ignore it.
	HelloWait time.Duration
}

func (o WorldOptions) local() peerInfo {
	proto := o.Proto
	if proto == 0 {
		proto = ProtoLatest
	}
	caps := o.Caps
	if caps == 0 && proto >= ProtoV2 {
		caps = AllCaps
	}
	if proto < ProtoV2 {
		caps = 0 // v1 endpoints cannot announce capabilities
	}
	return peerInfo{proto: proto, caps: caps}
}

func (o WorldOptions) helloWait() time.Duration {
	if o.HelloWait > 0 {
		return o.HelloWait
	}
	return defaultHelloWait
}

// conn wraps a transport connection with a write lock and buffered
// writer so multiple goroutines can send frames. The write-side codec
// is guarded by the same mutex; each conn's reader goroutine owns a
// separate one.
type conn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
	fc frameCodec
}

func newConn(c net.Conn) *conn {
	return &conn{c: c, w: bufio.NewWriter(c)}
}

func (cn *conn) send(dest, src, tag int, payload []byte) error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if err := cn.fc.writeFrame(cn.w, dest, src, tag, payload); err != nil {
		return err
	}
	return cn.w.Flush()
}

// HubComm is rank 0 of a framed-transport world: it listens, hands out
// ranks, negotiates protocol versions, routes worker-to-worker frames
// and delivers dest-0 frames to its own mailbox.
type HubComm struct {
	size      int
	mbox      *mailbox
	ln        net.Listener
	workers   []*conn // index 1..size-1
	local     peerInfo
	helloWait time.Duration
	// peers[rank] is the negotiated protocol/capability view of each
	// worker. Written only before WaitWorkers returns (classification),
	// immutable afterwards.
	peers []peerInfo
	// closed suppresses peer-drop events for connections torn down by
	// our own Close — only peers lost while the hub is live are news.
	closed atomic.Bool
	once   sync.Once
	wg     sync.WaitGroup
}

var (
	_ Comm       = (*HubComm)(nil)
	_ Negotiator = (*HubComm)(nil)
)

// ListenHub binds a TCP hub listener on addr (which may use port 0) and
// returns immediately; call WaitWorkers to accept the workers. The
// two-phase split lets callers learn Addr before workers dial in.
func ListenHub(addr string, size int) (*HubComm, error) {
	return ListenHubWith(addr, size, WorldOptions{})
}

// ListenHubWith is ListenHub over an explicit transport and protocol
// version.
func ListenHubWith(addr string, size int, o WorldOptions) (*HubComm, error) {
	if size < 2 {
		return nil, fmt.Errorf("mpi: hub world needs size >= 2, got %d", size)
	}
	tr, err := LookupTransport(o.Transport)
	if err != nil {
		return nil, err
	}
	ln, err := tr.Listen(addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: hub listen (%s): %w", tr.Name(), err)
	}
	h := &HubComm{
		size:      size,
		mbox:      newMailbox(),
		ln:        ln,
		workers:   make([]*conn, size),
		local:     o.local(),
		helloWait: o.helloWait(),
		peers:     make([]peerInfo, size),
	}
	for rank := range h.peers {
		// Until (unless) a worker says hello, assume the legacy
		// contract: a v1 hub assumes v1 peers implement everything (it
		// cannot ask), a v2 hub assumes nothing beyond the baseline.
		if h.local.proto >= ProtoV2 {
			h.peers[rank] = negotiate(h.local, legacyPeer)
		} else {
			h.peers[rank] = peerInfo{proto: ProtoV1, caps: AllCaps}
		}
	}
	return h, nil
}

// WaitWorkers accepts exactly size-1 workers (assigning ranks
// 1..size-1 in connection order), negotiates protocol versions with
// each, and starts the router. It must be called once, before any
// Send/Probe/Recv on the hub. When it returns, every worker's
// negotiated capability set is final — the first batch a master packs
// already sees the downgraded view of old workers.
func (h *HubComm) WaitWorkers() error {
	for rank := 1; rank < h.size; rank++ {
		c, err := h.ln.Accept()
		if err != nil {
			h.Close()
			return fmt.Errorf("mpi: hub accept: %w", err)
		}
		if err := h.handshake(c, rank); err != nil {
			c.Close()
			h.Close()
			return err
		}
		h.workers[rank] = newConn(c)
	}
	// Routers classify their worker's first frame; this barrier makes
	// every classification final before the hub is usable.
	var classified sync.WaitGroup
	for rank := 1; rank < h.size; rank++ {
		h.wg.Add(1)
		classified.Add(1)
		go h.route(rank, &classified)
	}
	classified.Wait()
	return nil
}

// NewHub is the one-shot form: listen on addr and block until all
// size-1 workers have joined.
func NewHub(addr string, size int) (*HubComm, error) {
	return NewHubWith(addr, size, WorldOptions{})
}

// NewHubWith is NewHub over an explicit transport and protocol version.
func NewHubWith(addr string, size int, o WorldOptions) (*HubComm, error) {
	h, err := ListenHubWith(addr, size, o)
	if err != nil {
		return nil, err
	}
	if err := h.WaitWorkers(); err != nil {
		return nil, err
	}
	return h, nil
}

// Addr returns the address the hub is listening on — host:port for
// tcp, the socket path for unix, the world name for inproc — useful
// when the listen address was ephemeral.
func (h *HubComm) Addr() string { return h.ln.Addr().String() }

// handshake runs the fixed v1-compatible exchange (magic in, rank/size
// out) and, on a v2 hub, announces this hub's protocol and capabilities
// with a hello control frame a v1 worker will never notice.
func (h *HubComm) handshake(c net.Conn, rank int) error {
	magic := make([]byte, len(wireMagic))
	if _, err := io.ReadFull(c, magic); err != nil {
		return fmt.Errorf("mpi: hub handshake read: %w", err)
	}
	if string(magic) != wireMagic {
		return fmt.Errorf("%w: bad handshake magic %q", ErrProtocol, magic)
	}
	var reply [8]byte
	binary.BigEndian.PutUint32(reply[0:], uint32(rank))
	binary.BigEndian.PutUint32(reply[4:], uint32(h.size))
	if _, err := c.Write(reply[:]); err != nil {
		return fmt.Errorf("mpi: hub handshake write: %w", err)
	}
	if h.local.proto >= ProtoV2 {
		if err := writeFrame(c, helloDest, helloSrc, helloTag, encodeHello(h.local)); err != nil {
			return fmt.Errorf("mpi: hub hello write: %w", err)
		}
	}
	return nil
}

// classify settles the negotiated view of one worker from its first
// frame. A v2 worker answers the hub's hello before anything else, so
// its hello is guaranteed to be first in the stream; a v1 worker sends
// nothing until it has work, so a bounded quiet period means v1. Peek
// is used so a timeout consumes no bytes and the stream stays aligned.
func (h *HubComm) classify(rank int, cn *conn, r *bufio.Reader, fc *frameCodec) error {
	cn.c.SetReadDeadline(telemetry.Deadline(h.helloWait))
	_, peekErr := r.Peek(1)
	cn.c.SetReadDeadline(time.Time{})
	if peekErr != nil {
		if errors.Is(peekErr, os.ErrDeadlineExceeded) {
			return nil // silent: keep the conservative legacy default
		}
		return peekErr
	}
	dest, src, tag, payload, err := fc.readFrame(r)
	if err != nil {
		return err
	}
	if isHello(dest, src, tag, payload) {
		info, err := decodeHello(payload)
		if err != nil {
			return err
		}
		h.peers[rank] = negotiate(h.local, info)
		return nil
	}
	// First frame is application traffic: a legacy worker that spoke
	// early. Deliver it; the conservative default stands.
	h.deliver(dest, src, tag, payload, fc)
	return nil
}

// deliver routes one application frame: hub-bound frames go to the
// mailbox (copied out of the codec's scratch buffer), worker-bound
// frames are forwarded in place with no allocation.
func (h *HubComm) deliver(dest, src, tag int, payload []byte, fc *frameCodec) {
	if dest == 0 {
		h.mbox.put(message{source: src, tag: tag, data: fc.retain(payload)})
		return
	}
	if dest > 0 && dest < h.size {
		if w := h.workers[dest]; w != nil {
			_ = w.send(dest, src, tag, payload) // best effort, like the wire
		}
	}
	// Anything else (including late control frames) is dropped, as v1
	// always did for unroutable destinations.
}

// route reads frames from one worker and forwards them. The first read
// classifies the worker's protocol version; the barrier in WaitWorkers
// holds the hub unusable until every classification lands.
func (h *HubComm) route(rank int, classified *sync.WaitGroup) {
	defer h.wg.Done()
	cn := h.workers[rank]
	// Dropping a peer closes its connection: after a read error —
	// protocol violations especially — the stream is unsynchronized and
	// must not linger half-open. The hub keeps serving the other ranks.
	defer cn.c.Close()
	r := bufio.NewReader(cn.c)
	fc := newFrameCodec(h.local.proto)
	if h.local.proto >= ProtoV2 {
		err := h.classify(rank, cn, r, fc)
		classified.Done()
		if err != nil {
			if !h.closed.Load() {
				emitPeerEvent(rank, err)
			}
			return
		}
	} else {
		classified.Done()
	}
	for {
		dest, src, tag, payload, err := fc.readFrame(r)
		if err != nil {
			// Worker gone (or speaking garbage): the deferred close
			// drops it; the hub keeps serving the other ranks.
			if !h.closed.Load() {
				emitPeerEvent(rank, err)
			}
			return
		}
		h.deliver(dest, src, tag, payload, fc)
	}
}

// Rank implements Comm.
func (h *HubComm) Rank() int { return 0 }

// Size implements Comm.
func (h *HubComm) Size() int { return h.size }

// PeerProto implements Negotiator: the negotiated protocol version
// with a worker rank.
func (h *HubComm) PeerProto(rank int) int {
	if rank <= 0 || rank >= h.size {
		return ProtoLatest
	}
	return h.peers[rank].proto
}

// PeerCaps implements Negotiator: the negotiated capability set with a
// worker rank.
func (h *HubComm) PeerCaps(rank int) CapSet {
	if rank <= 0 || rank >= h.size {
		return AllCaps
	}
	return h.peers[rank].caps
}

// Send implements Comm.
func (h *HubComm) Send(data []byte, dest, tag int) error {
	if dest <= 0 || dest >= h.size {
		return fmt.Errorf("mpi: hub send to invalid rank %d", dest)
	}
	return h.workers[dest].send(dest, 0, tag, data)
}

// Probe implements Comm.
func (h *HubComm) Probe(source, tag int) (Status, error) {
	return h.mbox.probe(source, tag)
}

// Recv implements Comm.
func (h *HubComm) Recv(source, tag int) ([]byte, Status, error) {
	m, err := h.mbox.recv(source, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}, nil
}

// Close implements Comm: it closes the listener and every worker
// connection, unblocking all pending operations everywhere.
func (h *HubComm) Close() error {
	h.once.Do(func() {
		h.closed.Store(true)
		h.ln.Close()
		for _, w := range h.workers {
			if w != nil {
				w.c.Close()
			}
		}
		h.mbox.close()
		h.wg.Wait()
	})
	return nil
}

// WorkerComm is a rank >= 1 endpoint connected to a hub.
type WorkerComm struct {
	rank  int
	size  int
	mbox  *mailbox
	cn    *conn
	local peerInfo
	// peer packs the negotiated view of the hub (proto<<32 | caps),
	// written by the receive loop when the hub's hello arrives — always
	// before the first application frame, by stream order — and read by
	// whoever asks PeerCaps.
	peer atomic.Uint64
	// closed suppresses the peer-drop event when the read error was
	// caused by our own Close.
	closed atomic.Bool
	once   sync.Once
}

var (
	_ Comm       = (*WorkerComm)(nil)
	_ Negotiator = (*WorkerComm)(nil)
)

// DialHub connects to a TCP hub, learns this process's rank and the
// world size from the handshake, and starts the receive loop.
func DialHub(addr string) (*WorkerComm, error) {
	return DialHubWith(addr, WorldOptions{})
}

// DialHubWith is DialHub over an explicit transport and protocol
// version.
func DialHubWith(addr string, o WorldOptions) (*WorkerComm, error) {
	tr, err := LookupTransport(o.Transport)
	if err != nil {
		return nil, err
	}
	c, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: dial hub (%s): %w", tr.Name(), err)
	}
	if _, err := c.Write([]byte(wireMagic)); err != nil {
		c.Close()
		return nil, fmt.Errorf("mpi: worker handshake: %w", err)
	}
	var reply [8]byte
	if _, err := io.ReadFull(c, reply[:]); err != nil {
		c.Close()
		return nil, fmt.Errorf("mpi: worker handshake read: %w", err)
	}
	w := &WorkerComm{
		rank:  int(binary.BigEndian.Uint32(reply[0:])),
		size:  int(binary.BigEndian.Uint32(reply[4:])),
		mbox:  newMailbox(),
		cn:    newConn(c),
		local: o.local(),
	}
	// Until the hub says hello: a v1 worker assumes the legacy
	// everything-implemented contract; a v2 worker assumes baseline
	// only, so optional payloads are withheld from old hubs.
	if w.local.proto >= ProtoV2 {
		w.setPeer(negotiate(w.local, legacyPeer))
	} else {
		w.setPeer(peerInfo{proto: ProtoV1, caps: AllCaps})
	}
	go w.recvLoop()
	return w, nil
}

func (w *WorkerComm) setPeer(info peerInfo) {
	w.peer.Store(uint64(info.proto)<<32 | uint64(info.caps))
}

func (w *WorkerComm) peerInfo() peerInfo {
	v := w.peer.Load()
	return peerInfo{proto: int(v >> 32), caps: CapSet(uint32(v))}
}

func (w *WorkerComm) recvLoop() {
	r := bufio.NewReader(w.cn.c)
	fc := newFrameCodec(w.local.proto)
	for {
		dest, src, tag, payload, err := fc.readFrame(r)
		if err != nil {
			// A read error — connection loss or a protocol violation —
			// leaves the stream unsynchronized: close the conn rather
			// than linger half-open, and unblock every pending Recv.
			if !w.closed.Load() {
				emitPeerEvent(0, err) // rank 0: the hub is the only peer
			}
			w.cn.c.Close()
			w.mbox.close()
			return
		}
		if isHello(dest, src, tag, payload) {
			// The hub announced its protocol. Answer with ours (the
			// hub's classifier is waiting) and settle the negotiation —
			// all before any application frame is processed, so span
			// shipping and friends see the final capability set.
			if w.local.proto >= ProtoV2 {
				if info, err := decodeHello(payload); err == nil {
					w.setPeer(negotiate(w.local, info))
					_ = w.cn.send(helloDest, helloSrc, helloTag, encodeHello(w.local))
				}
			}
			continue
		}
		w.mbox.put(message{source: src, tag: tag, data: fc.retain(payload)})
	}
}

// Rank implements Comm.
func (w *WorkerComm) Rank() int { return w.rank }

// Size implements Comm.
func (w *WorkerComm) Size() int { return w.size }

// PeerProto implements Negotiator: the protocol version negotiated
// with the hub (any rank — everything travels via the hub).
func (w *WorkerComm) PeerProto(int) int { return w.peerInfo().proto }

// PeerCaps implements Negotiator: the capability set negotiated with
// the hub.
func (w *WorkerComm) PeerCaps(int) CapSet { return w.peerInfo().caps }

// Send implements Comm; frames to any destination travel via the hub.
func (w *WorkerComm) Send(data []byte, dest, tag int) error {
	if dest < 0 || dest >= w.size {
		return fmt.Errorf("mpi: worker send to invalid rank %d", dest)
	}
	return w.cn.send(dest, w.rank, tag, data)
}

// Probe implements Comm.
func (w *WorkerComm) Probe(source, tag int) (Status, error) {
	return w.mbox.probe(source, tag)
}

// Recv implements Comm.
func (w *WorkerComm) Recv(source, tag int) ([]byte, Status, error) {
	m, err := w.mbox.recv(source, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.source, Tag: m.tag, Bytes: len(m.data)}, nil
}

// Close implements Comm.
func (w *WorkerComm) Close() error {
	w.once.Do(func() {
		w.closed.Store(true)
		w.cn.c.Close()
		w.mbox.close()
	})
	return nil
}
