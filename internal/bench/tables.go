package bench

import (
	"fmt"
	"strings"

	"riskbench/internal/farm"
	"riskbench/internal/portfolio"
	"riskbench/internal/simnet"
)

// TableSpec describes one of the paper's tables: a workload swept over
// CPU counts for one or more communication strategies.
type TableSpec struct {
	// Name labels the table ("Table I", …).
	Name string
	// Caption reproduces the paper's caption.
	Caption string
	// Portfolio generates the workload.
	Portfolio *portfolio.Portfolio
	// CPUCounts are the paper's row values.
	CPUCounts []int
	// Strategies are the compared communication strategies (columns).
	Strategies []farm.Strategy
	// SharedNFS keeps one NFS cache across all rows of the sweep,
	// reproducing the paper's warm-cache bias in repeat runs; when false a
	// cold cache is used per row.
	SharedNFS bool
	// MaxCPUs optionally truncates CPUCounts (0 = keep all), so quick
	// benchmarks can run a prefix of the table.
	MaxCPUs int
}

// Cell is one (time, ratio) measurement.
type Cell struct {
	// Time is the simulated makespan in seconds.
	Time float64
	// Ratio is the paper's speedup ratio T(2)/((n−1)·T(n)).
	Ratio float64
}

// Row is one CPU count's measurements across strategies.
type Row struct {
	// CPUs is the row's CPU count.
	CPUs int
	// Cells maps strategy → measurement.
	Cells map[farm.Strategy]Cell
}

// Table is a completed sweep.
type Table struct {
	// Spec echoes the input.
	Spec TableSpec
	// Rows are in CPU-count order.
	Rows []Row
}

// TableI reproduces the paper's Table I: speedups of the Premia
// non-regression tests, serialized-load strategy, 2–256 CPUs.
func TableI() TableSpec {
	return TableSpec{
		Name:       "Table I",
		Caption:    "Speedup table for the non-regression tests of Premia.",
		Portfolio:  portfolio.Regression(),
		CPUCounts:  []int{2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256},
		Strategies: []farm.Strategy{farm.SerializedLoad},
	}
}

// TableII reproduces Table II: the 10,000-vanilla toy portfolio compared
// across the three communication strategies, 2–50 CPUs, with the NFS
// cache shared across rows as in the paper's biased repeat runs.
func TableII() TableSpec {
	return TableSpec{
		Name:       "Table II",
		Caption:    "Comparison of the different ways of carrying out the communications (toy portfolio).",
		Portfolio:  portfolio.Toy(10000),
		CPUCounts:  []int{2, 4, 8, 10, 12, 14, 16, 18, 20, 24, 28, 32, 36, 40, 45, 50},
		Strategies: []farm.Strategy{farm.FullLoad, farm.NFSLoad, farm.SerializedLoad},
		SharedNFS:  true,
	}
}

// TableIII reproduces Table III: the realistic 7931-claim portfolio
// across the three strategies, 2–512 CPUs.
func TableIII() TableSpec {
	return TableSpec{
		Name:       "Table III",
		Caption:    "Comparison of the different ways of carrying out the communications (realistic portfolio).",
		Portfolio:  portfolio.Realistic(),
		CPUCounts:  []int{2, 4, 6, 8, 10, 16, 32, 64, 96, 128, 160, 192, 224, 256, 320, 384, 512},
		Strategies: []farm.Strategy{farm.FullLoad, farm.NFSLoad, farm.SerializedLoad},
		SharedNFS:  true,
	}
}

// RunTable executes the sweep.
func RunTable(spec TableSpec) (*Table, error) {
	tasks, err := spec.Portfolio.Tasks()
	if err != nil {
		return nil, err
	}
	counts := spec.CPUCounts
	if spec.MaxCPUs > 0 {
		var trimmed []int
		for _, n := range counts {
			if n <= spec.MaxCPUs {
				trimmed = append(trimmed, n)
			}
		}
		counts = trimmed
	}
	names := make([]string, len(tasks))
	for i, t := range tasks {
		names[i] = t.Name
	}
	table := &Table{Spec: spec}
	baseline := map[farm.Strategy]float64{}
	// Per-strategy persistent NFS when SharedNFS (warm across rows).
	shared := map[farm.Strategy]*simnet.NFS{}
	for _, n := range counts {
		row := Row{CPUs: n, Cells: map[farm.Strategy]Cell{}}
		for _, strat := range spec.Strategies {
			var fs *simnet.NFS
			if strat == farm.NFSLoad {
				if spec.SharedNFS {
					if shared[strat] == nil {
						shared[strat] = simnet.NewNFS(simnet.DefaultNFS)
					}
					fs = shared[strat]
				} else {
					fs = simnet.NewNFS(simnet.DefaultNFS)
				}
			}
			t, err := Run(RunConfig{Tasks: tasks, CPUs: n, Strategy: strat, FS: fs})
			if err != nil {
				return nil, fmt.Errorf("bench: %s, %d CPUs, %v: %w", spec.Name, n, strat, err)
			}
			cell := Cell{Time: t}
			if b, ok := baseline[strat]; ok {
				cell.Ratio = b / (float64(n-1) * t)
			} else {
				baseline[strat] = t
				cell.Ratio = 1
			}
			row.Cells[strat] = cell
		}
		table.Rows = append(table.Rows, row)
	}
	return table, nil
}

// Format renders the table in the paper's layout: one row per CPU count
// with Time and Speedup-ratio columns per strategy.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s. %s\n", t.Spec.Name, t.Spec.Caption)
	fmt.Fprintf(&b, "%-8s", "CPUs")
	for range t.Spec.Strategies {
		fmt.Fprintf(&b, "%14s%14s", "Time", "Speedup")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, s := range t.Spec.Strategies {
		label := s.String()
		fmt.Fprintf(&b, "%14s%14s", label, label)
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		fmt.Fprintf(&b, "%-8d", row.CPUs)
		for _, s := range t.Spec.Strategies {
			c := row.Cells[s]
			fmt.Fprintf(&b, "%14.4f%14.6f", c.Time, c.Ratio)
		}
		b.WriteString("\n")
	}
	return b.String()
}
