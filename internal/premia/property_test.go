package premia

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randBS draws a sane random Black–Scholes parameter set.
func randBS(r *rand.Rand) (s0, rr, q, sigma, k, t float64) {
	s0 = 50 + 100*r.Float64()
	rr = -0.01 + 0.11*r.Float64()
	q = 0.05 * r.Float64()
	sigma = 0.05 + 0.55*r.Float64()
	k = s0 * (0.5 + r.Float64())
	t = 0.1 + 4*r.Float64()
	return
}

func quickCfg(n int, gen func(r *rand.Rand) []reflect.Value) *quick.Config {
	return &quick.Config{
		MaxCount: n,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			for i, v := range gen(r) {
				vals[i] = v
			}
		},
	}
}

type bsCase struct {
	S0, R, Q, Sigma, K, T float64
}

func genBSCase(r *rand.Rand) []reflect.Value {
	s0, rr, q, sigma, k, t := randBS(r)
	return []reflect.Value{reflect.ValueOf(bsCase{s0, rr, q, sigma, k, t})}
}

func (c bsCase) problem(option, method string) *Problem {
	return New().SetModel(ModelBS1D).SetOption(option).SetMethod(method).
		Set("S0", c.S0).Set("r", c.R).Set("divid", c.Q).Set("sigma", c.Sigma).
		Set("K", c.K).Set("T", c.T)
}

func TestPropertyCallArbitrageBounds(t *testing.T) {
	f := func(c bsCase) bool {
		res, err := c.problem(OptCallEuro, MethodCFCall).Compute()
		if err != nil {
			return false
		}
		lower := math.Max(c.S0*math.Exp(-c.Q*c.T)-c.K*math.Exp(-c.R*c.T), 0)
		upper := c.S0 * math.Exp(-c.Q*c.T)
		return res.Price >= lower-1e-10 && res.Price <= upper+1e-10 &&
			res.Delta >= 0 && res.Delta <= 1
	}
	if err := quick.Check(f, quickCfg(500, genBSCase)); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyVolatilityMonotone(t *testing.T) {
	// Vanilla prices increase with volatility.
	f := func(c bsCase) bool {
		lo, err := c.problem(OptCallEuro, MethodCFCall).Compute()
		if err != nil {
			return false
		}
		cHi := c
		cHi.Sigma = c.Sigma * 1.3
		hi, err := cHi.problem(OptCallEuro, MethodCFCall).Compute()
		if err != nil {
			return false
		}
		return hi.Price >= lo.Price-1e-10
	}
	if err := quick.Check(f, quickCfg(300, genBSCase)); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyBarrierBelowVanilla(t *testing.T) {
	f := func(c bsCase, lFrac float64) bool {
		lFrac = math.Abs(math.Mod(lFrac, 0.9))
		l := c.S0 * (0.05 + lFrac) // barrier strictly below spot
		if l >= c.S0 {
			return true
		}
		vanilla, err := c.problem(OptCallEuro, MethodCFCall).Compute()
		if err != nil {
			return false
		}
		barrier, err := c.problem(OptCallDownOut, MethodCFCallDownOut).Set("L", l).Compute()
		if err != nil {
			return false
		}
		return barrier.Price >= -1e-10 && barrier.Price <= vanilla.Price+1e-8
	}
	cfg := quickCfg(300, func(r *rand.Rand) []reflect.Value {
		vs := genBSCase(r)
		return append(vs, reflect.ValueOf(r.Float64()))
	})
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDigitalParity(t *testing.T) {
	f := func(c bsCase) bool {
		call, err := c.problem(OptDigitalCall, MethodCFDigital).Compute()
		if err != nil {
			return false
		}
		put, err := c.problem(OptDigitalPut, MethodCFDigital).Compute()
		if err != nil {
			return false
		}
		df := math.Exp(-c.R * c.T)
		return math.Abs(call.Price+put.Price-df) < 1e-10 &&
			call.Price >= 0 && put.Price >= 0
	}
	if err := quick.Check(f, quickCfg(400, genBSCase)); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAmericanDominance(t *testing.T) {
	// American put >= European put >= intrinsic-discounted bound, via the
	// trinomial tree at random parameters.
	f := func(c bsCase) bool {
		euro, err := c.problem(OptPutEuro, MethodTreeTrinomial).Set("steps", 200).Compute()
		if err != nil {
			return true // probability clamp at extreme drift: skip
		}
		amer, err := c.problem(OptPutAmer, MethodTreeTrinomial).Set("steps", 200).Compute()
		if err != nil {
			return true
		}
		intrinsic := math.Max(c.K-c.S0, 0)
		return amer.Price >= euro.Price-1e-9 && amer.Price >= intrinsic-1e-9
	}
	if err := quick.Check(f, quickCfg(150, genBSCase)); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMertonAboveBSPrice(t *testing.T) {
	// With zero-mean jumps, jump risk adds convexity value: the Merton
	// price dominates Black–Scholes at the same diffusion volatility for
	// convex payoffs (variance is strictly larger).
	f := func(c bsCase, lamSeed float64) bool {
		lambda := 0.1 + math.Abs(math.Mod(lamSeed, 2))
		merton := New().SetModel(ModelMerton).SetOption(OptCallEuro).SetMethod(MethodCFMerton).
			Set("S0", c.S0).Set("r", c.R).Set("divid", c.Q).Set("sigma", c.Sigma).
			Set("lambda", lambda).Set("muJ", -0.02).Set("sigmaJ", 0.2).
			Set("K", c.K).Set("T", c.T)
		mp, err := merton.Compute()
		if err != nil {
			return false
		}
		bs, err := c.problem(OptCallEuro, MethodCFCall).Compute()
		if err != nil {
			return false
		}
		return mp.Price >= bs.Price-1e-8
	}
	cfg := quickCfg(200, func(r *rand.Rand) []reflect.Value {
		vs := genBSCase(r)
		return append(vs, reflect.ValueOf(r.Float64()))
	})
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTreesAgree(t *testing.T) {
	// CRR and trinomial converge to the same value at random parameters.
	f := func(c bsCase) bool {
		crr, err := c.problem(OptCallEuro, MethodTreeCRR).Set("steps", 600).Compute()
		if err != nil {
			return true
		}
		tri, err := c.problem(OptCallEuro, MethodTreeTrinomial).Set("steps", 600).Compute()
		if err != nil {
			return true
		}
		scale := math.Max(crr.Price, 0.5)
		return math.Abs(crr.Price-tri.Price) < 0.02*scale+0.02
	}
	if err := quick.Check(f, quickCfg(60, genBSCase)); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGreeksSigns(t *testing.T) {
	// Closed-form call: gamma, vega > 0; rho > 0; delta in (0,1).
	f := func(c bsCase) bool {
		g, err := ComputeGreeks(c.problem(OptCallEuro, MethodCFCall), GreekBumps{})
		if err != nil {
			return false
		}
		return g.Gamma > 0 && g.Vega > 0 && g.Rho > 0 && g.Delta > 0 && g.Delta < 1
	}
	if err := quick.Check(f, quickCfg(300, genBSCase)); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyXDRProblemStable(t *testing.T) {
	// Marshal → unmarshal → marshal is byte-identical (canonical form).
	f := func(c bsCase) bool {
		p := c.problem(OptCallEuro, MethodCFCall)
		b1, err := p.MarshalXDR()
		if err != nil {
			return false
		}
		q, err := UnmarshalXDR(b1)
		if err != nil {
			return false
		}
		b2, err := q.MarshalXDR()
		if err != nil {
			return false
		}
		if len(b1) != len(b2) {
			return false
		}
		for i := range b1 {
			if b1[i] != b2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(200, genBSCase)); err != nil {
		t.Fatal(err)
	}
}
