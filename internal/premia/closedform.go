package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// bsCallPrice returns the Black–Scholes price and delta of a European call.
func bsCallPrice(m bsParams, k, t float64) (price, delta float64) {
	d1, d2 := bsD1D2(m, k, t)
	df := math.Exp(-m.R * t)
	dq := math.Exp(-m.Div * t)
	price = m.S0*dq*mathutil.NormCDF(d1) - k*df*mathutil.NormCDF(d2)
	delta = dq * mathutil.NormCDF(d1)
	return price, delta
}

// bsPutPrice returns the Black–Scholes price and delta of a European put.
func bsPutPrice(m bsParams, k, t float64) (price, delta float64) {
	d1, d2 := bsD1D2(m, k, t)
	df := math.Exp(-m.R * t)
	dq := math.Exp(-m.Div * t)
	price = k*df*mathutil.NormCDF(-d2) - m.S0*dq*mathutil.NormCDF(-d1)
	delta = -dq * mathutil.NormCDF(-d1)
	return price, delta
}

func bsD1D2(m bsParams, k, t float64) (d1, d2 float64) {
	st := m.Sigma * math.Sqrt(t)
	d1 = (math.Log(m.S0/k) + (m.R-m.Div+0.5*m.Sigma*m.Sigma)*t) / st
	d2 = d1 - st
	return d1, d2
}

// cfCall implements the CF_Call method: the plain-vanilla closed formula,
// the "almost instantaneous" pricing of the paper's toy portfolio.
func cfCall(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	price, delta := bsCallPrice(m, o.K, o.T)
	return Result{Price: price, Delta: delta, HasDelta: true, Work: 1}, nil
}

// cfPut implements the CF_Put method.
func cfPut(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	price, delta := bsPutPrice(m, o.K, o.T)
	return Result{Price: price, Delta: delta, HasDelta: true, Work: 1}, nil
}

// cfCallDownOut implements the Reiner–Rubinstein closed formula for a
// down-and-out call with barrier L, covering both the L <= K and L > K
// branches. The rebate is assumed paid at expiry if the barrier is hit.
func cfCallDownOut(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := barrierFrom(p)
	if err != nil {
		return Result{}, err
	}
	if m.S0 <= o.L {
		// Spot already at or below the barrier: knocked out immediately.
		return Result{Price: o.Rebate * math.Exp(-m.R*o.T), Delta: 0, HasDelta: true, Work: 1}, nil
	}
	price := downOutCall(m, o.K, o.T, o.L)
	if o.Rebate != 0 {
		price += o.Rebate * math.Exp(-m.R*o.T) * downInProbability(m, o.T, o.L)
	}
	// Delta by central difference of the closed formula: still effectively
	// free and robust across both branches.
	const h = 1e-4
	up, dn := m, m
	up.S0 = m.S0 * (1 + h)
	dn.S0 = m.S0 * (1 - h)
	pu := downOutCall(up, o.K, o.T, o.L)
	pd := downOutCall(dn, o.K, o.T, o.L)
	delta := (pu - pd) / (2 * h * m.S0)
	return Result{Price: price, Delta: delta, HasDelta: true, Work: 2}, nil
}

// downOutCall is the rebate-free Reiner–Rubinstein down-and-out call price
// for S0 > L.
func downOutCall(m bsParams, k, t, l float64) float64 {
	sig2 := m.Sigma * m.Sigma
	lambda := (m.R - m.Div + 0.5*sig2) / sig2
	st := m.Sigma * math.Sqrt(t)
	dq := math.Exp(-m.Div * t)
	df := math.Exp(-m.R * t)
	hs := l / m.S0
	if k >= l {
		// Down-and-in call for L <= K, subtracted from the vanilla.
		c, _ := bsCallPrice(m, k, t)
		y := math.Log(l*l/(m.S0*k))/st + lambda*st
		cdi := m.S0*dq*math.Pow(hs, 2*lambda)*mathutil.NormCDF(y) -
			k*df*math.Pow(hs, 2*lambda-2)*mathutil.NormCDF(y-st)
		v := c - cdi
		if v < 0 {
			return 0
		}
		return v
	}
	// L > K branch.
	x1 := math.Log(m.S0/l)/st + lambda*st
	y1 := math.Log(l/m.S0)/st + lambda*st
	v := m.S0*dq*mathutil.NormCDF(x1) - k*df*mathutil.NormCDF(x1-st) -
		m.S0*dq*math.Pow(hs, 2*lambda)*mathutil.NormCDF(y1) +
		k*df*math.Pow(hs, 2*lambda-2)*mathutil.NormCDF(y1-st)
	if v < 0 {
		return 0
	}
	return v
}

// downInProbability returns the risk-neutral probability that the barrier
// L is hit before t, used to value a rebate paid at expiry.
func downInProbability(m bsParams, t, l float64) float64 {
	if m.S0 <= l {
		return 1
	}
	mu := m.R - m.Div - 0.5*m.Sigma*m.Sigma
	st := m.Sigma * math.Sqrt(t)
	b := math.Log(l / m.S0) // negative
	return mathutil.NormCDF((b-mu*t)/st) + math.Exp(2*mu*b/(m.Sigma*m.Sigma))*mathutil.NormCDF((b+mu*t)/st)
}

// hestonQuadN is the number of Gauss–Legendre nodes of the Fourier
// inversion; 200 nodes on [0, 200] is ample for the benchmark's parameter
// ranges.
const (
	hestonQuadN  = 200
	hestonQuadUB = 200.0
)

// cfHeston prices European calls and puts in the Heston model by Fourier
// inversion with the Albrecher et al. "little trap" characteristic
// function (numerically stable branch of the complex logarithm).
func cfHeston(p *Problem) (Result, error) {
	m, err := hestonFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	nodes, weights := mathutil.GaussLegendre(hestonQuadN)
	lnK := math.Log(o.K)
	phi := func(u complex128) complex128 { return hestonCF(m, o.T, u) }
	fwdDF := math.Exp((m.R - m.Div) * o.T)
	integrand1 := func(u float64) float64 {
		cu := complex(u, 0)
		v := phi(cu-1i) / (1i * cu * complex(m.S0*fwdDF, 0))
		return real(v * cmplxExp(-1i*cu*complex(lnK, 0)))
	}
	integrand2 := func(u float64) float64 {
		cu := complex(u, 0)
		v := phi(cu) / (1i * cu)
		return real(v * cmplxExp(-1i*cu*complex(lnK, 0)))
	}
	p1 := 0.5 + mathutil.Integrate(integrand1, 1e-8, hestonQuadUB, nodes, weights)/math.Pi
	p2 := 0.5 + mathutil.Integrate(integrand2, 1e-8, hestonQuadUB, nodes, weights)/math.Pi
	call := m.S0*math.Exp(-m.Div*o.T)*p1 - o.K*math.Exp(-m.R*o.T)*p2
	delta := math.Exp(-m.Div*o.T) * p1
	price := call
	switch p.Option {
	case OptCallEuro:
	case OptPutEuro:
		// Put–call parity.
		price = call - m.S0*math.Exp(-m.Div*o.T) + o.K*math.Exp(-m.R*o.T)
		delta = delta - math.Exp(-m.Div*o.T)
	default:
		return Result{}, fmt.Errorf("premia: CF_Heston does not price %q", p.Option)
	}
	return Result{Price: price, Delta: delta, HasDelta: true, Work: 2 * hestonQuadN}, nil
}

// hestonCF is the characteristic function E[exp(iu ln S_T)] in the
// little-trap parameterisation.
func hestonCF(m hestonParams, t float64, u complex128) complex128 {
	iu := 1i * u
	x0 := complex(math.Log(m.S0)+(m.R-m.Div)*t, 0)
	kappa := complex(m.Kappa, 0)
	theta := complex(m.Theta, 0)
	sig := complex(m.SigmaV, 0)
	rho := complex(m.Rho, 0)
	v0 := complex(m.V0, 0)

	d := cmplxSqrt((rho*sig*iu-kappa)*(rho*sig*iu-kappa) + sig*sig*(iu+u*u))
	g := (kappa - rho*sig*iu - d) / (kappa - rho*sig*iu + d)
	ct := complex(t, 0)
	eDT := cmplxExp(-d * ct)
	a := kappa * theta / (sig * sig) * ((kappa-rho*sig*iu-d)*ct - 2*cmplxLog((1-g*eDT)/(1-g)))
	b := v0 / (sig * sig) * (kappa - rho*sig*iu - d) * (1 - eDT) / (1 - g*eDT)
	return cmplxExp(iu*x0 + a + b)
}
