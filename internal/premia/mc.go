package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// Default Monte Carlo sizes. The paper uses 10⁶ samples for the realistic
// portfolio; unit tests override "paths" downward for speed.
const (
	mcDefaultPaths = 100000
	mcDefaultSteps = 64
	mcSeedKey      = "seed"
	mcSeedHiKey    = "seedhi"
	mcDefaultSeed  = 20090101
)

// mcSeed assembles the Monte Carlo seed. Params values are float64, which
// represents only 53-bit integers exactly, so full-width 64-bit seeds
// travel as two 32-bit halves — "seed" (low) and "seedhi" (high), written
// together by Problem.SetSeed. Problems carrying just "seed" keep their
// historical meaning.
func mcSeed(p *Problem) uint64 {
	lo := p.Params.Uint64(mcSeedKey, mcDefaultSeed)
	hi := p.Params.Uint64(mcSeedHiKey, 0)
	return hi<<32 | lo
}

// mcEuro implements MC_Euro: Monte Carlo under one-dimensional
// Black–Scholes with exact lognormal terminal sampling for vanilla
// payoffs, and a Brownian-bridge-corrected Euler path for the
// down-and-out barrier call. Paths run on the multicore pricing kernel
// (see parallel.go). Parameters: "paths", "threads",
// "mcsteps" (barrier only).
func mcEuro(p *Problem) (Result, error) {
	m, err := bsFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	if paths < 2 {
		return Result{}, fmt.Errorf("premia: MC_Euro needs paths >= 2, got %d", paths)
	}

	switch p.Option {
	case OptCallEuro, OptPutEuro:
		o, err := vanillaFrom(p)
		if err != nil {
			return Result{}, err
		}
		isCall := p.Option == OptCallEuro
		antithetic := p.Params.Get("antithetic", 0) != 0
		drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * o.T
		vol := m.Sigma * math.Sqrt(o.T)
		df := math.Exp(-m.R * o.T)
		// Struct-of-arrays inner loops: normals are drawn, terminal spots
		// evolved, and payoffs accumulated in three batched passes over
		// contiguous scratch buffers. The per-path arithmetic and
		// accumulation order match the scalar formulation exactly, so the
		// estimate is bit-identical to the path-at-a-time loop.
		payoffPass := func(st []float64, accs []mathutil.Welford, scale float64) {
			if isCall {
				for _, s := range st {
					var dpay float64
					if s > o.K {
						dpay = s / m.S0 // pathwise delta of a call
					}
					accs[0].Add(scale * payoffCall(s, o.K))
					accs[1].Add(scale * dpay)
				}
			} else {
				for _, s := range st {
					var dpay float64
					if s < o.K {
						dpay = -s / m.S0
					}
					accs[0].Add(scale * payoffPut(s, o.K))
					accs[1].Add(scale * dpay)
				}
			}
		}
		var accs []mathutil.Welford
		if antithetic {
			// Pair each draw with its mirror: the averaged pair is one
			// sample with strictly smaller variance for monotone payoffs.
			// The kernel shards over pairs, so each pair stays on one
			// stream.
			pairPay := func(s1, s2 float64) (pay, dpay float64) {
				if isCall {
					pay = payoffCall(s1, o.K) + payoffCall(s2, o.K)
					if s1 > o.K {
						dpay = s1 / m.S0
					}
					if s2 > o.K {
						dpay += s2 / m.S0
					}
				} else {
					pay = payoffPut(s1, o.K) + payoffPut(s2, o.K)
					if s1 < o.K {
						dpay = -s1 / m.S0
					}
					if s2 < o.K {
						dpay += -s2 / m.S0
					}
				}
				return pay, dpay
			}
			accs, err = runPathKernel(p, paths/2, 2, func(rng *mathutil.RNG, n int, accs []mathutil.Welford, sc *kernelScratch) {
				g := sc.floats(soaBlock)
				st1 := sc.floats(soaBlock)
				st2 := sc.floats(soaBlock)
				for done := 0; done < n; done += soaBlock {
					bn := min(soaBlock, n-done)
					rng.NormVec(g[:bn])
					for i := 0; i < bn; i++ {
						st1[i] = m.S0 * math.Exp(drift+vol*g[i])
						st2[i] = m.S0 * math.Exp(drift+vol*-g[i])
					}
					for i := 0; i < bn; i++ {
						p12, d12 := pairPay(st1[i], st2[i])
						accs[0].Add(df * p12 / 2)
						accs[1].Add(df * d12 / 2)
					}
				}
			})
		} else {
			accs, err = runPathKernel(p, paths, 2, func(rng *mathutil.RNG, n int, accs []mathutil.Welford, sc *kernelScratch) {
				g := sc.floats(soaBlock)
				st := sc.floats(soaBlock)
				for done := 0; done < n; done += soaBlock {
					bn := min(soaBlock, n-done)
					rng.NormVec(g[:bn])
					for i := 0; i < bn; i++ {
						st[i] = m.S0 * math.Exp(drift+vol*g[i])
					}
					payoffPass(st[:bn], accs, df)
				}
			})
		}
		if err != nil {
			return Result{}, err
		}
		return Result{
			Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
			Delta: accs[1].Mean(), HasDelta: true,
			Work: float64(paths),
		}, nil

	case OptCallUpOut:
		return mcCallUpOut(p)

	case OptCallDownOut:
		o, err := barrierFrom(p)
		if err != nil {
			return Result{}, err
		}
		if m.S0 <= o.L {
			return Result{Price: o.Rebate * math.Exp(-m.R*o.T), HasDelta: false, Work: 1}, nil
		}
		steps := p.Params.Int("mcsteps", mcDefaultSteps)
		if steps < 1 {
			return Result{}, fmt.Errorf("premia: MC_Euro barrier needs mcsteps >= 1")
		}
		dt := o.T / float64(steps)
		drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * dt
		vol := m.Sigma * math.Sqrt(dt)
		df := math.Exp(-m.R * o.T)
		lnL := math.Log(o.L)
		sig2dt := m.Sigma * m.Sigma * dt
		// The barrier path stays path-at-a-time: early knock-out ends the
		// path's draws, so the per-path draw count is data-dependent and
		// pre-filling a normals block would shift the stream.
		accs, err := runPathKernel(p, paths, 1, func(rng *mathutil.RNG, n int, accs []mathutil.Welford, _ *kernelScratch) {
			for i := 0; i < n; i++ {
				x := math.Log(m.S0)
				alive := true
				// Survival probability of the Brownian bridge between the
				// discrete monitoring dates removes the discretisation bias.
				survival := 1.0
				for k := 0; k < steps && alive; k++ {
					xNext := x + drift + vol*rng.Norm()
					if xNext <= lnL {
						alive = false
						break
					}
					// P(bridge from x to xNext dips below lnL).
					pHit := math.Exp(-2 * (x - lnL) * (xNext - lnL) / sig2dt)
					survival *= 1 - pHit
					x = xNext
				}
				pay := o.Rebate
				if alive {
					st := math.Exp(x)
					pay = survival*payoffCall(st, o.K) + (1-survival)*o.Rebate
				}
				accs[0].Add(df * pay)
			}
		})
		if err != nil {
			return Result{}, err
		}
		return Result{
			Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
			Work: float64(paths) * float64(steps),
		}, nil
	}
	return Result{}, fmt.Errorf("premia: MC_Euro does not price %q", p.Option)
}

// mcBasket implements MC_Basket: a European put on the equally-weighted
// average of dim correlated Black–Scholes assets, sampled exactly at
// maturity through the Cholesky factor of the correlation matrix. This is
// the paper's "40-dimensional basket put, 10⁶ samples" workload.
//
// Paths run on the multicore pricing kernel: the optional "threads"
// parameter sizes the goroutine pool, while the shard decomposition (and
// therefore the estimate) depends only on (seed, paths) — see
// parallel.go.
func mcBasket(p *Problem) (Result, error) {
	m, err := mbsFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	if paths < 2 {
		return Result{}, fmt.Errorf("premia: MC_Basket needs paths >= 2, got %d", paths)
	}
	d := m.Dim
	chol := make([]float64, d*d)
	if err := mathutil.Cholesky(mathutil.CorrelationMatrix(d, m.Rho), d, chol); err != nil {
		return Result{}, fmt.Errorf("premia: basket correlation: %w", err)
	}
	drift := (m.R - m.Div - 0.5*m.Sigma*m.Sigma) * o.T
	vol := m.Sigma * math.Sqrt(o.T)
	df := math.Exp(-m.R * o.T)

	isCall := p.Option == OptCallBasketEuro
	// Struct-of-arrays: draw a whole block of path normals in one batched
	// pass, then correlate / evolve / accumulate path by path. The draw
	// order and per-path arithmetic are unchanged, so the estimate is
	// bit-identical to the path-at-a-time loop.
	block := soaBlock / d
	if block < 1 {
		block = 1
	}
	accs, err := runPathKernel(p, paths, 1, func(rng *mathutil.RNG, n int, accs []mathutil.Welford, sc *kernelScratch) {
		g := sc.floats(block * d)
		cz := sc.floats(d)
		st := sc.floats(d)
		for done := 0; done < n; done += block {
			bn := min(block, n-done)
			rng.NormVec(g[:bn*d])
			for i := 0; i < bn; i++ {
				mathutil.MatVecLower(chol, d, g[i*d:(i+1)*d], cz)
				for j := 0; j < d; j++ {
					st[j] = m.S0 * math.Exp(drift+vol*cz[j])
				}
				if isCall {
					accs[0].Add(df * payoffCall(basketValue(st), o.K))
				} else {
					accs[0].Add(df * payoffPut(basketValue(st), o.K))
				}
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
		Work: float64(paths) * float64(d),
	}, nil
}

// mcLocalVol implements MC_LocalVol: log-Euler simulation under the
// parametric local-volatility surface, sharded over the multicore pricing
// kernel. Parameters: "paths", "mcsteps", "threads".
func mcLocalVol(p *Problem) (Result, error) {
	m, err := lvFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	steps := p.Params.Int("mcsteps", mcDefaultSteps)
	if paths < 2 || steps < 1 {
		return Result{}, fmt.Errorf("premia: MC_LocalVol needs paths >= 2 and mcsteps >= 1")
	}
	isCall := p.Option == OptCallEuro
	dt := o.T / float64(steps)
	sqdt := math.Sqrt(dt)
	df := math.Exp(-m.R * o.T)
	// Struct-of-arrays: each block's normals (steps per path) are drawn in
	// one batched pass; the sequential-in-time evolution then consumes its
	// path's row. Draw order matches the interleaved scalar loop exactly.
	block := soaBlock / steps
	if block < 1 {
		block = 1
	}
	accs, err := runPathKernel(p, paths, 1, func(rng *mathutil.RNG, n int, accs []mathutil.Welford, sc *kernelScratch) {
		g := sc.floats(block * steps)
		for done := 0; done < n; done += block {
			bn := min(block, n-done)
			rng.NormVec(g[:bn*steps])
			for i := 0; i < bn; i++ {
				row := g[i*steps : (i+1)*steps]
				s := m.S0
				t := 0.0
				for k := 0; k < steps; k++ {
					sig := m.Vol(t, s)
					s *= math.Exp((m.R-m.Div-0.5*sig*sig)*dt + sig*sqdt*row[k])
					t += dt
				}
				var pay float64
				if isCall {
					pay = payoffCall(s, o.K)
				} else {
					pay = payoffPut(s, o.K)
				}
				accs[0].Add(df * pay)
			}
		}
	})
	if err != nil {
		return Result{}, err
	}
	return Result{
		Price: accs[0].Mean(), PriceCI: accs[0].HalfWidth95(),
		Work: float64(paths) * float64(steps),
	}, nil
}
