package bench

import (
	"riskbench/internal/farm"
	"riskbench/internal/nsp"
)

// CompressTasks returns a copy of the tasks with flate-compressed payload
// bytes, modelling the paper's proposed future development: problem files
// compressed offline "when preparing a set of problems", so the master
// pays no compression cost at run time while every wire transfer and NFS
// read shrinks. Costs and names are preserved.
func CompressTasks(tasks []farm.Task) ([]farm.Task, error) {
	out := make([]farm.Task, len(tasks))
	for i, t := range tasks {
		s := &nsp.Serial{Data: t.Data}
		c, err := s.Compress()
		if err != nil {
			return nil, err
		}
		out[i] = farm.Task{Name: t.Name, Data: c.Data, Cost: t.Cost}
	}
	return out, nil
}

// CompressionSavings reports the aggregate payload bytes before and after
// CompressTasks, for the ablation report.
func CompressionSavings(raw, compressed []farm.Task) (rawBytes, compressedBytes int) {
	for _, t := range raw {
		rawBytes += len(t.Data)
	}
	for _, t := range compressed {
		compressedBytes += len(t.Data)
	}
	return rawBytes, compressedBytes
}
