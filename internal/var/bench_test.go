package varisk

import (
	"context"
	"testing"

	"riskbench/internal/risk"
)

// BenchmarkVaRDeltaGamma measures the delta–gamma hot path: evaluating
// the Taylor expansion over a Monte Carlo scenario set, tail sort and
// component attribution included, with the sensitivities collected once
// outside the loop (as the serving layer and the CLI do). The
// allocation budget lives in BENCH_alloc.json.
func BenchmarkVaRDeltaGamma(b *testing.B) {
	pf := smallBook()
	sens, err := CollectSensitivities(context.Background(), risk.Engine{Workers: 2}, pf)
	if err != nil {
		b.Fatal(err)
	}
	scens, err := DefaultMarket().Generate(1000, 1)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Alphas: []float64{0.95, 0.99}, HorizonDays: 10}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DeltaGamma(sens, scens, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioGeneration measures the sharded Monte Carlo
// scenario generator.
func BenchmarkScenarioGeneration(b *testing.B) {
	m := DefaultMarket()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.GenerateParallel(context.Background(), 1000, 1, 4); err != nil {
			b.Fatal(err)
		}
	}
}
