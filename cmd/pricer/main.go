// Command pricer prices a single option, the command-line counterpart of
// the Nsp session in the paper's §3.3:
//
//	pricer -model BlackScholes1dim -option CallEuro -method CF_Call \
//	       -p S0=100 -p r=0.05 -p sigma=0.2 -p K=100 -p T=1
//
// Problems can also be saved to and loaded from the XDR-backed save files
// that the communication strategies ship around:
//
//	pricer -model Heston1dim -option PutAmer \
//	       -method MC_AM_Alfonsi_LongstaffSchwartz \
//	       -p S0=100 -p V0=0.04 -p kappa=2 -p theta=0.04 -p sigmaV=0.3 \
//	       -p rhoSV=-0.7 -p K=100 -p T=1 -save fic
//	pricer -load fic
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"riskbench/internal/mpi"
	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// paramFlags collects repeated -p key=value flags.
type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprint(map[string]float64(p)) }

func (p paramFlags) Set(s string) error {
	key, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("parameter %s: %w", key, err)
	}
	p[key] = v
	return nil
}

func main() {
	params := paramFlags{}
	var (
		model     = flag.String("model", "", "model name (see riskbench -methods)")
		option    = flag.String("option", "", "option name")
		method    = flag.String("method", "", "method name")
		save      = flag.String("save", "", "save the problem to this file instead of pricing")
		load      = flag.String("load", "", "load a problem from this file")
		greeks    = flag.Bool("greeks", false, "also report gamma, vega, theta and rho")
		implied   = flag.Float64("implied", 0, "invert this market price to an implied volatility instead of pricing")
		transport = flag.String("transport", "local", "price in-process (local) or through a one-worker farm on a framed mpi transport (tcp | unix | inproc)")
	)
	flag.Var(params, "p", "problem parameter key=value (repeatable)")
	flag.Parse()

	var p *premia.Problem
	var err error
	if *load != "" {
		p, err = premia.Load(*load)
		if err != nil {
			fatalf("%v", err)
		}
	} else {
		p = premia.New().SetModel(*model).SetOption(*option).SetMethod(*method)
	}
	for k, v := range params {
		p.Set(k, v)
	}
	if *save != "" {
		if err := p.Validate(); err != nil {
			fatalf("%v", err)
		}
		if err := p.Save(*save); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("saved %s to %s\n", p, *save)
		return
	}
	if *implied != 0 {
		iv, err := premia.ImpliedVolFromProblem(p, *implied)
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("problem:      %s\n", p)
		fmt.Printf("market price: %.6f\n", *implied)
		fmt.Printf("implied vol:  %.6f\n", iv)
		return
	}
	start := time.Now()
	res, err := compute(*transport, p)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("problem:  %s\n", p)
	fmt.Printf("price:    %.6f", res.Price)
	if res.PriceCI > 0 {
		fmt.Printf("  (95%% CI ± %.6f)", res.PriceCI)
	}
	fmt.Println()
	if res.HasDelta {
		fmt.Printf("delta:    %.6f\n", res.Delta)
	}
	if *greeks {
		g, err := premia.ComputeGreeks(p, premia.GreekBumps{})
		if err != nil {
			fatalf("greeks: %v", err)
		}
		fmt.Printf("gamma:    %.6f\n", g.Gamma)
		fmt.Printf("vega:     %.6f\n", g.Vega)
		fmt.Printf("theta:    %.6f\n", g.Theta)
		fmt.Printf("rho:      %.6f\n", g.Rho)
	}
	fmt.Printf("elapsed:  %v\n", time.Since(start).Round(time.Microsecond))
}

// compute prices p in-process, or — with a non-local transport — through
// a one-worker farm round over the framed wire, exercising the same
// handshake, negotiation and codec path the deployed fleet uses. Prices
// are identical either way; the farm path is a smoke test of the wire.
func compute(transport string, p *premia.Problem) (premia.Result, error) {
	if transport == "" || transport == "local" {
		return p.Compute()
	}
	if _, err := mpi.LookupTransport(transport); err != nil {
		return premia.Result{}, fmt.Errorf("%w (or \"local\")", err)
	}
	eng := risk.Engine{Workers: 1, Backend: &risk.NetBackend{
		Transport: transport,
		Spawn:     risk.GoNetWorkers(func(int) *telemetry.Registry { return telemetry.New() }, 0),
	}}
	out, err := eng.PriceBatch(context.Background(), []*premia.Problem{p})
	if err != nil {
		return premia.Result{}, err
	}
	if out[0].Err != nil {
		return premia.Result{}, out[0].Err
	}
	return out[0].Result, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pricer: "+format+"\n", args...)
	os.Exit(1)
}
