package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// Longstaff–Schwartz defaults: exercise dates and regression degree.
const (
	lsmDefaultExDates = 50
	lsmDefaultDegree  = 3
	lsmDefaultPaths   = 20000
)

// mcAmerLSM implements MC_AM_LongstaffSchwartz for American puts under
// one-dimensional Black–Scholes and for American basket puts under the
// n-dimensional model. The continuation value is regressed on monomials of
// the (basket) spot over in-the-money paths, per the original algorithm.
// Parameters: "paths", "exdates", "degree".
func mcAmerLSM(p *Problem) (Result, error) {
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", lsmDefaultPaths)
	exDates := p.Params.Int("exdates", lsmDefaultExDates)
	degree := p.Params.Int("degree", lsmDefaultDegree)
	if paths < 10 || exDates < 2 || degree < 1 {
		return Result{}, fmt.Errorf("premia: LSM needs paths >= 10, exdates >= 2, degree >= 1")
	}

	var dim int
	var s0, r, div, sigma, rho float64
	switch p.Model {
	case ModelBS1D:
		m, err := bsFrom(p)
		if err != nil {
			return Result{}, err
		}
		dim, s0, r, div, sigma, rho = 1, m.S0, m.R, m.Div, m.Sigma, 0
	case ModelBSND:
		m, err := mbsFrom(p)
		if err != nil {
			return Result{}, err
		}
		dim, s0, r, div, sigma, rho = m.Dim, m.S0, m.R, m.Div, m.Sigma, m.Rho
	default:
		return Result{}, fmt.Errorf("premia: LSM does not support model %q", p.Model)
	}

	chol := make([]float64, dim*dim)
	if err := mathutil.Cholesky(mathutil.CorrelationMatrix(dim, rho), dim, chol); err != nil {
		return Result{}, fmt.Errorf("premia: LSM correlation: %w", err)
	}

	// Simulate the basket value at each exercise date for each path. Only
	// the basket average is needed by the payoff and the regression, so
	// paths×dates floats suffice even in dimension 40. Path generation is
	// the method's hot phase and runs sharded on the multicore pricing
	// kernel, each shard writing its disjoint block of the basket matrix;
	// the backward induction below stays serial (it regresses across
	// paths).
	dt := o.T / float64(exDates)
	drift := (r - div - 0.5*sigma*sigma) * dt
	vol := sigma * math.Sqrt(dt)
	basket := make([]float64, paths*exDates) // basket[i*exDates+k] at date k+1
	err = runIndexedKernel(p, paths, func(_, start, count int, rng *mathutil.RNG, sc *kernelScratch) {
		logS := sc.floats(dim)
		cz := sc.floats(dim)
		// All of a path's normals (exDates·dim) are drawn in one batched
		// pass; the date loop then consumes them row by row in the same
		// order the interleaved scalar loop drew them.
		z := sc.floats(exDates * dim)
		for i := start; i < start+count; i++ {
			for j := range logS {
				logS[j] = math.Log(s0)
			}
			rng.NormVec(z)
			for k := 0; k < exDates; k++ {
				mathutil.MatVecLower(chol, dim, z[k*dim:(k+1)*dim], cz)
				sum := 0.0
				for j := 0; j < dim; j++ {
					logS[j] += drift + vol*cz[j]
					sum += math.Exp(logS[j])
				}
				basket[i*exDates+k] = sum / float64(dim)
			}
		}
	})
	if err != nil {
		return Result{}, err
	}

	// Backward induction with regression over in-the-money paths.
	discStep := math.Exp(-r * dt)
	cash := make([]float64, paths) // value along each path, discounted to the current date
	for i := 0; i < paths; i++ {
		cash[i] = payoffPut(basket[i*exDates+exDates-1], o.K)
	}
	nb := degree + 1
	design := make([]float64, paths*nb)
	ys := make([]float64, paths)
	idx := make([]int, paths)
	beta := make([]float64, nb)
	basis := make([]float64, nb)
	work := float64(paths) * float64(exDates) * float64(dim)
	for k := exDates - 2; k >= 0; k-- {
		for i := range cash {
			cash[i] *= discStep
		}
		// Gather in-the-money paths.
		n := 0
		for i := 0; i < paths; i++ {
			b := basket[i*exDates+k]
			if payoffPut(b, o.K) > 0 {
				mathutil.PolyBasis(b/o.K, design[n*nb:(n+1)*nb]) // normalise for conditioning
				ys[n] = cash[i]
				idx[n] = i
				n++
			}
		}
		if n <= nb {
			continue // not enough points to regress: never exercise here
		}
		if err := mathutil.LeastSquares(design[:n*nb], n, nb, ys[:n], beta); err != nil {
			return Result{}, fmt.Errorf("premia: LSM regression at date %d: %w", k, err)
		}
		for j := 0; j < n; j++ {
			i := idx[j]
			b := basket[i*exDates+k]
			exercise := payoffPut(b, o.K)
			mathutil.PolyBasis(b/o.K, basis)
			cont := 0.0
			for q := 0; q < nb; q++ {
				cont += beta[q] * basis[q]
			}
			if exercise > cont {
				cash[i] = exercise
			}
		}
		work += float64(n) * float64(nb) * float64(nb)
	}
	var w mathutil.Welford
	for i := 0; i < paths; i++ {
		w.Add(discStep * cash[i])
	}
	price := w.Mean()
	// The American value dominates immediate exercise at t=0.
	if ex := payoffPut(s0, o.K); ex > price {
		price = ex
	}
	return Result{Price: price, PriceCI: w.HalfWidth95(), Work: work}, nil
}

// mcAmerAlfonsi implements MC_AM_Alfonsi_LongstaffSchwartz, the method
// named in the paper's Nsp example: an American put under Heston, with the
// variance simulated by Alfonsi's drift-implicit square-root scheme (exact
// positivity when 4κθ ≥ σᵥ²; full-truncation Euler fallback otherwise)
// and exercise decided by a Longstaff–Schwartz regression on (S, V).
// Parameters: "paths", "exdates", "degree".
func mcAmerAlfonsi(p *Problem) (Result, error) {
	m, err := hestonFrom(p)
	if err != nil {
		return Result{}, err
	}
	o, err := vanillaFrom(p)
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", lsmDefaultPaths)
	exDates := p.Params.Int("exdates", lsmDefaultExDates)
	if paths < 10 || exDates < 2 {
		return Result{}, fmt.Errorf("premia: Alfonsi LSM needs paths >= 10 and exdates >= 2")
	}

	dt := o.T / float64(exDates)
	sqdt := math.Sqrt(dt)
	useAlfonsi := 4*m.Kappa*m.Theta >= m.SigmaV*m.SigmaV
	rho2 := math.Sqrt(1 - m.Rho*m.Rho)

	// Path generation sharded on the multicore pricing kernel; the
	// regression phase below stays serial.
	spots := make([]float64, paths*exDates)
	vars := make([]float64, paths*exDates)
	err = runIndexedKernel(p, paths, func(_, start, count int, rng *mathutil.RNG, sc *kernelScratch) {
		// Each path's 2·exDates normals are drawn in one batched pass, in
		// the same interleaved (z1, z2) order the scalar loop consumed.
		zz := sc.floats(2 * exDates)
		for i := start; i < start+count; i++ {
			x := math.Log(m.S0)
			v := m.V0
			rng.NormVec(zz)
			for k := 0; k < exDates; k++ {
				z1 := zz[2*k]
				z2 := zz[2*k+1]
				vNew := hestonVarStep(m, v, dt, sqdt*z1, useAlfonsi)
				x += hestonLogSpotIncrement(m, v, vNew, dt, rho2, z2)
				v = vNew
				spots[i*exDates+k] = math.Exp(x)
				vars[i*exDates+k] = v
			}
		}
	})
	if err != nil {
		return Result{}, err
	}

	// LSM on the 2-d state (S, V): basis {1, s, s², s³, v, s·v} with
	// s = S/K normalised.
	const nb = 6
	discStep := math.Exp(-m.R * dt)
	cash := make([]float64, paths)
	for i := 0; i < paths; i++ {
		cash[i] = payoffPut(spots[i*exDates+exDates-1], o.K)
	}
	design := make([]float64, paths*nb)
	ys := make([]float64, paths)
	idx := make([]int, paths)
	beta := make([]float64, nb)
	fill := func(dst []float64, s, v float64) {
		sn := s / o.K
		dst[0] = 1
		dst[1] = sn
		dst[2] = sn * sn
		dst[3] = sn * sn * sn
		dst[4] = v
		dst[5] = sn * v
	}
	var basis [nb]float64
	work := float64(paths) * float64(exDates) * 4
	for k := exDates - 2; k >= 0; k-- {
		for i := range cash {
			cash[i] *= discStep
		}
		n := 0
		for i := 0; i < paths; i++ {
			s := spots[i*exDates+k]
			if payoffPut(s, o.K) > 0 {
				fill(design[n*nb:(n+1)*nb], s, vars[i*exDates+k])
				ys[n] = cash[i]
				idx[n] = i
				n++
			}
		}
		if n <= nb {
			continue
		}
		if err := mathutil.LeastSquares(design[:n*nb], n, nb, ys[:n], beta); err != nil {
			return Result{}, fmt.Errorf("premia: Alfonsi LSM regression at date %d: %w", k, err)
		}
		for j := 0; j < n; j++ {
			i := idx[j]
			s := spots[i*exDates+k]
			exercise := payoffPut(s, o.K)
			fill(basis[:], s, vars[i*exDates+k])
			cont := 0.0
			for q := 0; q < nb; q++ {
				cont += beta[q] * basis[q]
			}
			if exercise > cont {
				cash[i] = exercise
			}
		}
		work += float64(n) * nb * nb
	}
	var w mathutil.Welford
	for i := 0; i < paths; i++ {
		w.Add(discStep * cash[i])
	}
	price := w.Mean()
	if ex := payoffPut(m.S0, o.K); ex > price {
		price = ex
	}
	return Result{Price: price, PriceCI: w.HalfWidth95(), Work: work}, nil
}

// alfonsiStep advances the CIR variance by one step of Alfonsi's (2005)
// drift-implicit scheme on √V, which preserves positivity when
// 4κθ ≥ σᵥ². dw is the Brownian increment over the step.
func alfonsiStep(v, kappa, theta, sigma, dt, dw float64) float64 {
	// X = √V solves dX = ((κθ/2 − σ²/8)/X − κX/2) dt + (σ/2) dW; the
	// implicit discretisation yields a quadratic in X_{t+dt}.
	den := 1 + kappa*dt/2
	x := math.Sqrt(math.Max(v, 0))
	b := x + sigma*dw/2
	c := (kappa*theta/2 - sigma*sigma/8) * dt
	disc := b*b + 4*den*c
	if disc < 0 {
		disc = 0
	}
	xn := (b + math.Sqrt(disc)) / (2 * den)
	return xn * xn
}
