package telemetry

import (
	"context"
	"strings"
	"testing"
)

// TestTraceContextRoundTrip threads a trace through a context.Context.
func TestTraceContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if _, ok := TraceFromContext(ctx); ok {
		t.Fatal("empty context claims a trace")
	}
	tc := TraceContext{TraceID: 7, SpanID: 9}
	got, ok := TraceFromContext(ContextWithTrace(ctx, tc))
	if !ok || got != tc {
		t.Fatalf("round trip = %+v, %v; want %+v, true", got, ok, tc)
	}
	// Invalid contexts are not stored.
	if _, ok := TraceFromContext(ContextWithTrace(ctx, TraceContext{})); ok {
		t.Fatal("invalid trace context was stored")
	}
}

// TestStartTraceBuildsTree exercises the single-registry path: a trace
// root, local children, and reassembly via Traces/Roots/Children.
func TestStartTraceBuildsTree(t *testing.T) {
	r := New()
	root := r.StartTrace("serve.request")
	if !root.Context().Valid() {
		t.Fatal("StartTrace minted no trace ID")
	}
	c1 := root.StartChild("farm.task")
	c2 := root.StartChild("farm.task")
	if c1.Context().TraceID != root.Context().TraceID {
		t.Fatal("child did not inherit trace ID")
	}
	c1.End()
	c2.End()
	root.End()

	traces := r.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name != "serve.request" {
		t.Fatalf("roots = %+v, want single serve.request", roots)
	}
	if kids := tr.Children(roots[0].ID); len(kids) != 2 {
		t.Fatalf("root has %d children, want 2", len(kids))
	}
	if _, ok := tr.Find("farm.task"); !ok {
		t.Fatal("Find(farm.task) missed")
	}
}

// TestStartSpanInRemoteParenting plays master and worker with separate
// registries: the worker parents onto a TraceContext that crossed the
// "wire", ships its records back, and the master's table reassembles one
// tree with correct parent links.
func TestStartSpanInRemoteParenting(t *testing.T) {
	master := New()
	worker := New()

	root := master.StartTrace("farm.run")
	task := root.StartChild("farm.task")
	wire := task.Context() // what rides the task descriptor

	compute := worker.StartSpanIn(wire, "farm.compute")
	kernel := compute.StartChild("kernel")
	kernel.End()
	compute.End()
	task.End()
	root.End()

	// Ship the worker's spans back and ingest.
	master.IngestSpans([]SpanRecord{compute.Record(), kernel.Record()})

	traces := master.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if len(tr.Spans) != 4 {
		t.Fatalf("got %d spans, want 4 (run, task, compute, kernel)", len(tr.Spans))
	}
	comp, ok := tr.Find("farm.compute")
	if !ok {
		t.Fatal("worker span missing from master trace")
	}
	if comp.ParentID != task.ID() {
		t.Fatalf("farm.compute parent = %d, want farm.task %d", comp.ParentID, task.ID())
	}
	kern, _ := tr.Find("kernel")
	if kern.ParentID != comp.ID {
		t.Fatalf("kernel parent = %d, want farm.compute %d", kern.ParentID, comp.ID)
	}
	if roots := tr.Roots(); len(roots) != 1 || roots[0].Name != "farm.run" {
		t.Fatalf("roots = %+v, want single farm.run", roots)
	}
	// Worker metrics stayed on the worker: ingestion must not create
	// span aggregates on the master.
	if n := master.SpanCount("farm.compute"); n != 0 {
		t.Fatalf("IngestSpans leaked into span aggregates: count=%d", n)
	}
}

// TestIngestSpansDedupe re-ingests records already filed by Span.End —
// the shared-registry (in-process farm) shape — and expects no
// duplicates.
func TestIngestSpansDedupe(t *testing.T) {
	r := New()
	root := r.StartTrace("farm.run")
	child := root.StartChild("farm.compute")
	child.End()
	root.End()
	// Same records come back over the local "wire".
	r.IngestSpans([]SpanRecord{child.Record()})
	r.IngestSpans([]SpanRecord{child.Record()})

	traces := r.Traces()
	if len(traces) != 1 || len(traces[0].Spans) != 2 {
		t.Fatalf("after re-ingestion: %d traces, %d spans; want 1 trace, 2 spans",
			len(traces), len(traces[0].Spans))
	}
}

// TestIngestClockShift mimics the master normalizing worker clocks: the
// worker's records are shifted before ingestion and the reassembled
// trace nests the compute span inside the task span.
func TestIngestClockShift(t *testing.T) {
	master := New()
	now := 100.0
	master.SetClock(func() float64 { return now })

	root := master.StartTrace("farm.run")
	task := root.StartChild("farm.task")
	sentAt := master.Now()

	// Worker runs on its own clock, offset by +1000s.
	worker := New()
	wnow := 1100.0
	worker.SetClock(func() float64 { return wnow })
	workerRecvAt := worker.Now()
	compute := worker.StartSpanIn(task.Context(), "farm.compute")
	wnow += 2 // compute takes 2s
	compute.End()

	now += 2.5
	task.End()
	root.End()

	shift := sentAt - workerRecvAt
	rec := compute.Record()
	rec.Start += shift
	rec.End += shift
	master.IngestSpans([]SpanRecord{rec})

	tr := master.Traces()[0]
	comp, _ := tr.Find("farm.compute")
	tk, _ := tr.Find("farm.task")
	if comp.Start < tk.Start || comp.End > tk.End {
		t.Fatalf("shifted compute [%v,%v] not nested in task [%v,%v]",
			comp.Start, comp.End, tk.Start, tk.End)
	}
	if d := comp.End - comp.Start; d < 1.9 || d > 2.1 {
		t.Fatalf("compute duration %v distorted by shift, want 2", d)
	}
}

// TestSlowestTracesOrder checks descending-duration order and the n cap.
func TestSlowestTracesOrder(t *testing.T) {
	r := New()
	now := 0.0
	r.SetClock(func() float64 { return now })
	durations := []float64{1, 5, 3, 2, 4}
	for _, d := range durations {
		sp := r.StartTrace("run")
		now += d
		sp.End()
	}
	got := r.SlowestTraces(3)
	if len(got) != 3 {
		t.Fatalf("got %d traces, want 3", len(got))
	}
	want := []float64{5, 4, 3}
	for i, tr := range got {
		if tr.Duration() != want[i] {
			t.Fatalf("trace %d duration = %v, want %v", i, tr.Duration(), want[i])
		}
	}
}

// TestTraceTableEviction fills past maxTraces and expects FIFO eviction
// with the table size pinned at the cap.
func TestTraceTableEviction(t *testing.T) {
	r := New()
	var first uint64
	for i := 0; i < maxTraces+10; i++ {
		sp := r.StartTrace("run")
		if i == 0 {
			first = sp.Context().TraceID
		}
		sp.End()
	}
	traces := r.Traces()
	if len(traces) != maxTraces {
		t.Fatalf("table holds %d traces, want cap %d", len(traces), maxTraces)
	}
	for _, tr := range traces {
		if tr.TraceID == first {
			t.Fatal("oldest trace survived FIFO eviction")
		}
	}
}

// TestUntracedSpansStayOut: plain StartSpan spans never enter the table.
func TestUntracedSpansStayOut(t *testing.T) {
	r := New()
	sp := r.StartSpan("background")
	sp.StartChild("sub").End()
	sp.End()
	if traces := r.Traces(); len(traces) != 0 {
		t.Fatalf("untraced spans leaked into the trace table: %+v", traces)
	}
}

// TestRenderTraces smoke-tests the /debug/traces text: header, phase
// line, and indented tree with the child under the root.
func TestRenderTraces(t *testing.T) {
	r := New()
	now := 0.0
	r.SetClock(func() float64 { return now })
	root := r.StartTrace("serve.request")
	child := root.StartChild("farm.task")
	now += 0.25
	child.End()
	root.End()

	out := RenderTraces(r, DefaultTraceCount)
	for _, want := range []string{"1 trace(s) retained", "serve.request", "farm.task", "phases:"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The child renders below and more indented than the root.
	ri := strings.Index(out, "serve.request")
	ci := strings.Index(out, "farm.task")
	if ti := strings.LastIndex(out, "farm.task"); ti > ci {
		ci = ti // phase line mentions it first; take the tree line
	}
	if ci < ri {
		t.Errorf("child precedes root in tree render:\n%s", out)
	}
}
