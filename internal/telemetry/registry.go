package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a namespace of metrics and a span factory. Create one
// with New; the zero value is not usable, but a nil *Registry is a
// valid no-op sink (every method on it is safe and does nothing).
type Registry struct {
	counters sync.Map // string -> *Counter
	gauges   sync.Map // string -> *Gauge
	hists    sync.Map // string -> *Histogram
	spanAggs sync.Map // string -> *spanAgg

	clock  atomic.Value // func() float64
	spanID atomic.Uint64

	// ring of recently finished spans, for debugging and tests.
	spanMu   sync.Mutex
	spanRing []SpanRecord
	spanNext int

	// traces retains the spans of recently seen traces for /debug/traces
	// reassembly (local spans via recordSpan, remote ones via IngestSpans).
	traces traceTable

	// events is the flight-recorder ring (event.go), allocated on first
	// emission so registries that never emit events pay nothing.
	events atomic.Pointer[eventLog]
}

// spanRingCap bounds the finished-span ring buffer.
const spanRingCap = 4096

type spanAgg struct {
	count Counter
	total Gauge      // summed duration in seconds
	hist  *Histogram // the "span.<name>" histogram, resolved once
}

// New returns an empty registry on the wall clock. Span IDs start at a
// random base so spans minted by different registries — in particular
// different processes of one distributed farm — stay distinct when their
// records meet in one trace tree.
func New() *Registry {
	r := &Registry{}
	r.clock.Store(func() float64 { return wallSeconds() })
	r.spanID.Store(randUint64())
	return r
}

// Default is a shared process-wide registry for callers that do not
// need isolation (the CLI tools use it).
var Default = New()

// SetClock replaces the registry clock with fn, a monotone
// seconds-valued function. The cluster simulator installs its virtual
// clock here so recorded durations are virtual seconds.
func (r *Registry) SetClock(fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.clock.Store(fn)
}

// Now reads the registry clock (0 for nil registries).
func (r *Registry) Now() float64 {
	if r == nil {
		return 0
	}
	return r.clock.Load().(func() float64)()
}

// Counter returns the named counter, creating it on first use. Nil
// registries return nil, which is itself a valid no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, new(Counter))
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, new(Gauge))
	return v.(*Gauge)
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, new(Histogram))
	return v.(*Histogram)
}

// Observe records v into the named histogram.
func (r *Registry) Observe(name string, v float64) {
	r.Histogram(name).Observe(v)
}

// Add increments the named counter.
func (r *Registry) Add(name string, n int64) {
	r.Counter(name).Add(n)
}

func (r *Registry) spanAgg(name string) *spanAgg {
	if v, ok := r.spanAggs.Load(name); ok {
		return v.(*spanAgg)
	}
	v, _ := r.spanAggs.LoadOrStore(name, &spanAgg{hist: r.Histogram("span." + name)})
	return v.(*spanAgg)
}

// recordSpan files a finished span into the aggregate, the duration
// histogram "span.<name>", and the ring.
func (r *Registry) recordSpan(rec SpanRecord) {
	agg := r.spanAgg(rec.Name)
	agg.count.Add(1)
	agg.total.Add(rec.End - rec.Start)
	if rec.TraceID != 0 {
		agg.hist.ObserveExemplar(rec.End-rec.Start, rec.TraceID, rec.End)
	} else {
		agg.hist.Observe(rec.End - rec.Start)
	}
	r.traces.add(rec)
	r.spanMu.Lock()
	if len(r.spanRing) < spanRingCap {
		r.spanRing = append(r.spanRing, rec)
	} else {
		r.spanRing[r.spanNext] = rec
		r.spanNext = (r.spanNext + 1) % spanRingCap
	}
	r.spanMu.Unlock()
}

// FinishedSpans returns a copy of the retained finished spans (the most
// recent spanRingCap of them), in no particular order.
func (r *Registry) FinishedSpans() []SpanRecord {
	if r == nil {
		return nil
	}
	r.spanMu.Lock()
	defer r.spanMu.Unlock()
	out := make([]SpanRecord, len(r.spanRing))
	copy(out, r.spanRing)
	return out
}

// SpanCount returns how many spans with the given name have finished.
func (r *Registry) SpanCount(name string) int64 {
	if r == nil {
		return 0
	}
	v, ok := r.spanAggs.Load(name)
	if !ok {
		return 0
	}
	return v.(*spanAgg).count.Value()
}

// SpanStats summarizes one span name in a snapshot.
type SpanStats struct {
	Count        int64   `json:"count"`
	TotalSeconds float64 `json:"total_seconds"`
}

// Snapshot is a frozen, JSON-serializable copy of every metric in a
// registry.
type Snapshot struct {
	Counters   map[string]int64     `json:"counters,omitempty"`
	Gauges     map[string]float64   `json:"gauges,omitempty"`
	Histograms map[string]Stats     `json:"histograms,omitempty"`
	Spans      map[string]SpanStats `json:"spans,omitempty"`
}

// Snapshot freezes the registry. It is safe to call concurrently with
// writers; values are per-metric consistent, not globally consistent.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]Stats{},
		Spans:      map[string]SpanStats{},
	}
	if r == nil {
		return s
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(*Gauge).Value()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		s.Histograms[k.(string)] = v.(*Histogram).Stats()
		return true
	})
	r.spanAggs.Range(func(k, v any) bool {
		agg := v.(*spanAgg)
		s.Spans[k.(string)] = SpanStats{Count: agg.count.Value(), TotalSeconds: agg.total.Value()}
		return true
	})
	return s
}

// Names returns the sorted names of one metric kind, mainly for
// deterministic reports.
func (s Snapshot) Names(m map[string]int64) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Merge folds every metric of from into r, prefixing names with prefix:
// counters and span aggregates add, gauges overwrite, histograms merge
// bucket-wise. The sweep harness uses it to accumulate per-run
// registries into a caller-provided sink.
func (r *Registry) Merge(from *Registry, prefix string) {
	if r == nil || from == nil {
		return
	}
	from.counters.Range(func(k, v any) bool {
		r.Counter(prefix + k.(string)).Add(v.(*Counter).Value())
		return true
	})
	from.gauges.Range(func(k, v any) bool {
		r.Gauge(prefix + k.(string)).Set(v.(*Gauge).Value())
		return true
	})
	from.hists.Range(func(k, v any) bool {
		r.Histogram(prefix + k.(string)).merge(v.(*Histogram))
		return true
	})
	from.spanAggs.Range(func(k, v any) bool {
		agg := v.(*spanAgg)
		dst := r.spanAgg(prefix + k.(string))
		dst.count.Add(agg.count.Value())
		dst.total.Add(agg.total.Value())
		return true
	})
}
