package premia

import (
	"fmt"
	"math"
	"sort"
)

// Params is a flat name→value table holding every numeric parameter of a
// pricing problem (model, option and method parameters share one
// namespace, as in Premia's flattened parameter lists).
type Params map[string]float64

// Clone returns a deep copy.
func (p Params) Clone() Params {
	q := make(Params, len(p))
	for k, v := range p {
		q[k] = v
	}
	return q
}

// Get returns the value for key, or the fallback if absent.
func (p Params) Get(key string, fallback float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return fallback
}

// Need returns the value for key or an error naming the missing
// parameter, wrapping ErrMissingParam for errors.Is.
func (p Params) Need(key string) (float64, error) {
	v, ok := p[key]
	if !ok {
		return 0, fmt.Errorf("%w %q", ErrMissingParam, key)
	}
	return v, nil
}

// NeedPositive returns the value for key, requiring it to be > 0.
func (p Params) NeedPositive(key string) (float64, error) {
	v, err := p.Need(key)
	if err != nil {
		return 0, err
	}
	if v <= 0 {
		return 0, fmt.Errorf("premia: parameter %q must be positive, got %v", key, v)
	}
	return v, nil
}

// Int returns the value for key rounded to the nearest int (halves away
// from zero), or fallback if absent. math.Round, not int(v+0.5): the
// latter truncates toward zero after the shift and mis-rounds negatives
// (-2.4 would become -1).
func (p Params) Int(key string, fallback int) int {
	if v, ok := p[key]; ok {
		return int(math.Round(v))
	}
	return fallback
}

// Uint64 returns the value for key as a uint64, or fallback if absent.
// The conversion truncates any fraction and clamps to [0, 2^64) instead
// of hitting Go's undefined float→uint conversion for out-of-range
// values. Params values are float64, which holds only 53-bit integers
// exactly, so full-width 64-bit values (Monte Carlo seeds) should be
// split across two keys — see Problem.SetSeed.
func (p Params) Uint64(key string, fallback uint64) uint64 {
	v, ok := p[key]
	if !ok {
		return fallback
	}
	switch {
	case math.IsNaN(v) || v <= 0:
		return 0
	case v >= 1<<64:
		return math.MaxUint64
	}
	return uint64(v)
}

// Keys returns the parameter names in sorted order for deterministic
// encoding.
func (p Params) Keys() []string {
	ks := make([]string, 0, len(p))
	for k := range p {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
