// Package varisk is the portfolio risk-analytics layer on top of the
// pricing farm: Monte Carlo market-scenario generation, full-revaluation
// and delta–gamma VaR/CVaR estimation with per-position attribution, and
// the nested-simulation (outer scenarios × inner repricing) workload
// shapes the serving and benchmark layers consume.
//
// The package lives in the internal/var directory; the package clause is
// varisk because "var" is a Go keyword and cannot name a package.
//
// The division of labour with internal/risk: risk owns the mechanics of
// revaluation (scenario application, the farm round trip, the valuation
// surface), varisk owns the statistics on top of it (which scenarios to
// generate, how to turn a P&L sample into VaR/CVaR/component numbers,
// and how to avoid repricing at all via the Taylor expansion). Both
// estimators are deterministic end to end: scenario draws come from
// per-index split PCG64 streams, so generation is bit-identical at any
// thread count, and the farm's prices are thread-invariant by the
// multicore kernel's shard discipline.
package varisk
