package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"riskbench/internal/premia"
	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// TestObservabilityEndpoints prices through the real engine and checks
// the three flight-recorder surfaces: /debug/events serves NDJSON,
// /debug/slo lists the default objectives, and /debug/farm shows the
// workers that actually priced the batch.
func TestObservabilityEndpoints(t *testing.T) {
	s := New(Config{Engine: &risk.Engine{Workers: 2}, MaxDelay: time.Millisecond})
	defer s.Close()
	if w := postJSON(s, "/price", mcBody); w.Code != http.StatusOK {
		t.Fatalf("price: status %d body %s", w.Code, w.Body.String())
	}

	w := getPath(s, "/debug/events")
	if w.Code != http.StatusOK {
		t.Fatalf("debug/events: status %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "application/x-ndjson") {
		t.Errorf("debug/events content type = %q", ct)
	}
	for _, line := range strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n") {
		if line != "" && !json.Valid([]byte(line)) {
			t.Errorf("debug/events line is not JSON: %q", line)
		}
	}

	w = getPath(s, "/debug/slo")
	if w.Code != http.StatusOK {
		t.Fatalf("debug/slo: status %d", w.Code)
	}
	var slo struct {
		Objectives []telemetry.SLOStatus `json:"objectives"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &slo); err != nil {
		t.Fatalf("debug/slo not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, o := range slo.Objectives {
		names[o.Name] = true
	}
	if !names["price_latency"] || !names["error_rate"] {
		t.Errorf("default objectives missing: %+v", slo.Objectives)
	}

	w = getPath(s, "/debug/farm")
	if w.Code != http.StatusOK {
		t.Fatalf("debug/farm: status %d", w.Code)
	}
	var fleet struct {
		Workers []struct {
			Rank      int   `json:"rank"`
			Completed int64 `json:"completed"`
		} `json:"workers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &fleet); err != nil {
		t.Fatalf("debug/farm not JSON: %v", err)
	}
	if len(fleet.Workers) == 0 {
		t.Fatal("debug/farm shows no workers after a priced batch")
	}
	var completed int64
	for _, wk := range fleet.Workers {
		completed += wk.Completed
	}
	if completed == 0 {
		t.Errorf("fleet completed nothing: %+v", fleet.Workers)
	}
}

// TestServeRejectEventEmitted sheds a request over the inflight limit
// and expects the flight recorder to log it, retrievable through the
// endpoint's level filter.
func TestServeRejectEventEmitted(t *testing.T) {
	gate := make(chan struct{})
	price := func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		<-gate
		return make([]risk.PriceOutcome, len(problems)), nil
	}
	reg := telemetry.New()
	s := New(Config{Price: price, MaxInflight: 1, MaxBatch: 1, MaxDelay: time.Millisecond, Telemetry: reg})
	defer s.Close()
	done := make(chan struct{})
	go func() {
		postJSON(s, "/price", cfBody(90))
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("slow request never occupied the inflight slot")
		}
		time.Sleep(time.Millisecond)
	}
	if w := postJSON(s, "/price", cfBody(91)); w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	close(gate)
	<-done

	evs := reg.Events(telemetry.EventFilter{Prefix: "serve.reject.inflight"})
	if len(evs) != 1 {
		t.Fatalf("got %d serve.reject.inflight events, want 1", len(evs))
	}
	if evs[0].Level != telemetry.LevelWarn {
		t.Errorf("reject level = %v, want warn", evs[0].Level)
	}
	w := getPath(s, "/debug/events?level=warn&prefix=serve.reject")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"serve.reject.inflight"`) {
		t.Errorf("filtered endpoint missed the event: status %d body %q", w.Code, w.Body.String())
	}
	if w := getPath(s, "/debug/events?level=loud"); w.Code != http.StatusBadRequest {
		t.Errorf("bad level filter: status %d, want 400", w.Code)
	}
}

// TestServeSLOBreachThroughServer forces a p99 latency breach on the
// live server's monitor under a virtual clock: the gauge flips, the
// breach event links a slow request's trace, and /debug/slo reports it.
func TestServeSLOBreachThroughServer(t *testing.T) {
	reg := telemetry.New()
	clk := 0.0
	reg.SetClock(func() float64 { return clk })
	s := New(Config{Price: func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		return make([]risk.PriceOutcome, len(problems)), nil
	}, Telemetry: reg})
	defer s.Close()
	if s.slo == nil {
		t.Fatal("server built no SLO monitor")
	}
	s.slo.Tick() // baseline at t=0
	clk = 1
	for i := 0; i < 20; i++ {
		// Every request blows the 50ms objective; in production these
		// observations come from the serve.request span recorder.
		reg.ObserveExemplar("span.serve.request", 0.5,
			telemetry.TraceContext{TraceID: uint64(0xf00d + i), SpanID: 1})
	}
	s.slo.Tick()
	if g := reg.Gauge("slo.price_latency.breached").Value(); g != 1 {
		t.Fatalf("breached gauge = %v, want 1", g)
	}
	begins := reg.Events(telemetry.EventFilter{Prefix: "slo.breach.begin"})
	if len(begins) != 1 {
		t.Fatalf("got %d breach events, want 1", len(begins))
	}
	if tr := begins[0].TraceID; tr < 0xf00d || tr >= 0xf00d+20 {
		t.Errorf("breach trace %x is not one of the slow requests", tr)
	}
	w := getPath(s, "/debug/slo")
	var slo struct {
		Objectives []telemetry.SLOStatus `json:"objectives"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &slo); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range slo.Objectives {
		if o.Name == "price_latency" {
			found = true
			if !o.Breached {
				t.Error("/debug/slo does not report the breach")
			}
			if o.WorstExample == "" {
				t.Error("breached objective has no worst-offender trace")
			}
		}
	}
	if !found {
		t.Fatal("price_latency objective missing from /debug/slo")
	}
}

// TestServeDrainEventsOnce drains twice and expects exactly one
// begin/end event pair — the transition, not every call, is the event.
func TestServeDrainEventsOnce(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Price: func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		return make([]risk.PriceOutcome, len(problems)), nil
	}, Telemetry: reg})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := len(reg.Events(telemetry.EventFilter{Prefix: "serve.drain.begin"})); n != 1 {
		t.Errorf("%d drain.begin events, want 1", n)
	}
	if n := len(reg.Events(telemetry.EventFilter{Prefix: "serve.drain.end"})); n != 1 {
		t.Errorf("%d drain.end events, want 1", n)
	}
}

// TestServeEventsDisabled flips DisableEvents: no serve events, no SLO
// monitor, but every debug route stays mounted and well-formed.
func TestServeEventsDisabled(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Price: func(ctx context.Context, problems []*premia.Problem) ([]risk.PriceOutcome, error) {
		return make([]risk.PriceOutcome, len(problems)), nil
	}, MaxInflight: 1, Telemetry: reg, DisableEvents: true})
	defer s.Close()
	if s.slo != nil {
		t.Error("DisableEvents still built an SLO monitor")
	}
	if err := s.admit(); err != nil {
		t.Fatal(err)
	}
	if err := s.admit(); err != ErrOverloaded {
		t.Fatalf("second admit = %v, want overloaded", err)
	}
	s.release()
	if n := len(reg.Events(telemetry.EventFilter{})); n != 0 {
		t.Errorf("%d events emitted with the recorder disabled", n)
	}
	if w := getPath(s, "/debug/events"); w.Code != http.StatusOK {
		t.Errorf("debug/events: status %d", w.Code)
	}
	w := getPath(s, "/debug/slo")
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"objectives": []`) {
		t.Errorf("debug/slo: status %d body %q, want empty objectives", w.Code, w.Body.String())
	}
	if w := getPath(s, "/debug/farm"); w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"workers"`) {
		t.Errorf("debug/farm: status %d", w.Code)
	}
}
