package premia

import (
	"fmt"
	"math"

	"riskbench/internal/mathutil"
)

// The interest-rate asset class, reflecting Premia's recent addition of
// "various interest rate ... models and derivatives": the Vasicek
// short-rate model dr = a(b − r)dt + σᵣ dW, with zero-coupon bonds and
// European options on them.
const (
	// AssetRate is the interest-rate asset class.
	AssetRate = "rate"
	// ModelVasicek is the one-factor Gaussian short-rate model.
	ModelVasicek = "Vasicek1dim"
	// OptZCBond is the zero-coupon bond maturing at T (a "price the
	// discount curve" product; K is ignored).
	OptZCBond = "ZCBond"
	// OptZCCall is a European call with expiry T and strike K on a
	// zero-coupon bond maturing at S (parameter "S").
	OptZCCall = "ZCCall"
	// MethodCFVasicek prices both products in closed form (affine bond
	// price; Jamshidian's formula for the option).
	MethodCFVasicek = "CF_Vasicek"
	// MethodMCVasicek prices them by Monte Carlo over the exact
	// Ornstein–Uhlenbeck transition with trapezoidal discounting.
	MethodMCVasicek = "MC_Vasicek"
)

// vasicekParams are the short-rate dynamics parameters.
type vasicekParams struct {
	R0, A, B, SigmaR float64
}

func vasicekFrom(p *Problem) (vasicekParams, error) {
	var m vasicekParams
	var err error
	if m.A, err = p.Params.NeedPositive("a"); err != nil {
		return m, err
	}
	if m.SigmaR, err = p.Params.NeedPositive("sigmaR"); err != nil {
		return m, err
	}
	m.R0 = p.Params.Get("r0", 0.03)
	m.B = p.Params.Get("b", 0.05)
	return m, nil
}

// vasicekBond returns the time-0 price P(0,τ) of a zero-coupon bond.
func vasicekBond(m vasicekParams, tau float64) float64 {
	bf := (1 - math.Exp(-m.A*tau)) / m.A
	lnA := (bf-tau)*(m.A*m.A*m.B-0.5*m.SigmaR*m.SigmaR)/(m.A*m.A) -
		m.SigmaR*m.SigmaR*bf*bf/(4*m.A)
	return math.Exp(lnA - bf*m.R0)
}

// cfVasicek implements CF_Vasicek.
func cfVasicek(p *Problem) (Result, error) {
	m, err := vasicekFrom(p)
	if err != nil {
		return Result{}, err
	}
	t, err := p.Params.NeedPositive("T")
	if err != nil {
		return Result{}, err
	}
	switch p.Option {
	case OptZCBond:
		return Result{Price: vasicekBond(m, t), Work: 1}, nil
	case OptZCCall:
		s, err := p.Params.NeedPositive("S")
		if err != nil {
			return Result{}, err
		}
		if s <= t {
			return Result{}, fmt.Errorf("premia: ZCCall needs bond maturity S > option expiry T")
		}
		k, err := p.Params.NeedPositive("K")
		if err != nil {
			return Result{}, err
		}
		pt := vasicekBond(m, t)
		ps := vasicekBond(m, s)
		// Jamshidian: the bond price at T is lognormal with volatility σp.
		sigP := m.SigmaR / m.A * (1 - math.Exp(-m.A*(s-t))) *
			math.Sqrt((1-math.Exp(-2*m.A*t))/(2*m.A))
		d1 := math.Log(ps/(k*pt))/sigP + sigP/2
		d2 := d1 - sigP
		price := ps*mathutil.NormCDF(d1) - k*pt*mathutil.NormCDF(d2)
		return Result{Price: price, Work: 1}, nil
	}
	return Result{}, fmt.Errorf("premia: CF_Vasicek does not price %q", p.Option)
}

// mcVasicek implements MC_Vasicek: the short rate follows the exact OU
// transition on a fine grid; the money-market discount uses trapezoidal
// integration of the rate path. Parameters: "paths", "mcsteps".
func mcVasicek(p *Problem) (Result, error) {
	m, err := vasicekFrom(p)
	if err != nil {
		return Result{}, err
	}
	t, err := p.Params.NeedPositive("T")
	if err != nil {
		return Result{}, err
	}
	paths := p.Params.Int("paths", mcDefaultPaths)
	steps := p.Params.Int("mcsteps", mcDefaultSteps)
	if paths < 2 || steps < 1 {
		return Result{}, fmt.Errorf("premia: MC_Vasicek needs paths >= 2 and mcsteps >= 1")
	}
	var s, k float64
	isCall := p.Option == OptZCCall
	if isCall {
		if s, err = p.Params.NeedPositive("S"); err != nil {
			return Result{}, err
		}
		if s <= t {
			return Result{}, fmt.Errorf("premia: ZCCall needs S > T")
		}
		if k, err = p.Params.NeedPositive("K"); err != nil {
			return Result{}, err
		}
	} else if p.Option != OptZCBond {
		return Result{}, fmt.Errorf("premia: MC_Vasicek does not price %q", p.Option)
	}

	rng := mathutil.NewRNG(mcSeed(p))
	dt := t / float64(steps)
	ea := math.Exp(-m.A * dt)
	sd := m.SigmaR * math.Sqrt((1-ea*ea)/(2*m.A)) // exact OU step stdev
	var w mathutil.Welford
	for i := 0; i < paths; i++ {
		r := m.R0
		integral := 0.0
		for kk := 0; kk < steps; kk++ {
			rNext := m.B + (r-m.B)*ea + sd*rng.Norm()
			integral += 0.5 * (r + rNext) * dt
			r = rNext
		}
		disc := math.Exp(-integral)
		if isCall {
			// Bond price at T for the remaining maturity S−T, conditional
			// on r_T, is the Vasicek affine formula with r0 = r_T.
			mT := m
			mT.R0 = r
			payoff := vasicekBond(mT, s-t) - k
			if payoff < 0 {
				payoff = 0
			}
			w.Add(disc * payoff)
		} else {
			w.Add(disc)
		}
	}
	return Result{
		Price: w.Mean(), PriceCI: w.HalfWidth95(),
		Work: float64(paths) * float64(steps),
	}, nil
}
