package bench

import (
	"context"
	"fmt"

	"riskbench/internal/farm"
	"riskbench/internal/simnet"
	"riskbench/internal/telemetry"
)

// Scheduler selects the master's task-distribution policy.
type Scheduler int

// Available schedulers.
const (
	// RobinHood is the paper's dynamic first-come-first-served policy.
	RobinHood Scheduler = iota
	// StaticBlock pre-assigns tasks round-robin (ablation baseline).
	StaticBlock
	// Hierarchical uses sub-masters (the paper's proposed improvement).
	Hierarchical
)

// String returns a printable name.
func (s Scheduler) String() string {
	switch s {
	case RobinHood:
		return "robin-hood"
	case StaticBlock:
		return "static"
	case Hierarchical:
		return "hierarchical"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// RunConfig describes one simulated farm execution.
type RunConfig struct {
	// Tasks is the workload.
	Tasks []farm.Task
	// CPUs is the paper's CPU count: 1 master + (CPUs-1) workers.
	CPUs int
	// Strategy is the communication strategy.
	Strategy farm.Strategy
	// BatchSize groups tasks per message (default 1).
	BatchSize int
	// Scheduler selects the distribution policy (default RobinHood).
	Scheduler Scheduler
	// Groups is the number of sub-masters when Scheduler is Hierarchical.
	Groups int
	// Chunk is the root→sub-master hand-off size when hierarchical.
	Chunk int
	// Link models the interconnect (DefaultGigE if zero).
	Link simnet.LinkConfig
	// Costs models the strategy CPU costs (DefaultSimCosts if zero).
	Costs farm.SimCosts
	// FS is the shared NFS model; required for the NFS strategy. Reusing
	// one FS across runs keeps its cache warm, reproducing the paper's
	// biased repeat-run numbers.
	FS *simnet.NFS
	// SlowFraction marks that fraction of the workers (the highest ranks)
	// as slow nodes running at SlowFactor speed, modelling cluster
	// heterogeneity/background load.
	SlowFraction float64
	// SlowFactor is the slow nodes' relative speed (default 0.5 when
	// SlowFraction > 0).
	SlowFactor float64
	// Telemetry, when non-nil, receives the farm's per-task metrics for
	// this run. The registry's clock is bound to the simulation's
	// virtual clock for the duration of the run, so histograms and
	// spans measure virtual seconds; reuse one registry per run, not
	// across concurrent runs.
	Telemetry *telemetry.Registry
}

func (rc RunConfig) withDefaults() RunConfig {
	if rc.Link == (simnet.LinkConfig{}) {
		rc.Link = simnet.DefaultGigE
	}
	if rc.Costs == (farm.SimCosts{}) {
		rc.Costs = farm.DefaultSimCosts
	}
	if rc.BatchSize < 1 {
		rc.BatchSize = 1
	}
	return rc
}

// Run executes one simulated farm run and returns the virtual makespan in
// seconds. Cancelling ctx stops the master from dispatching further
// batches; the run then winds down cleanly and Run returns the context's
// error.
func Run(ctx context.Context, rc RunConfig) (float64, error) {
	rc = rc.withDefaults()
	if rc.CPUs < 2 {
		return 0, fmt.Errorf("bench: need at least 2 CPUs, got %d", rc.CPUs)
	}
	if rc.Strategy == farm.NFSLoad && rc.FS == nil {
		return 0, fmt.Errorf("bench: NFS strategy needs an FS model")
	}
	if rc.FS != nil {
		// A reused FS keeps its client caches warm across runs, but its
		// server queue must restart on this run's fresh virtual clock.
		rc.FS.ResetClock()
	}
	switch rc.Scheduler {
	case Hierarchical:
		return runHierarchical(ctx, rc)
	default:
		t, _, err := runFlat(ctx, rc)
		return t, err
	}
}

// RunStats augments a flat run's makespan with occupancy figures, the
// measurements behind the "many nodes are waiting for some more work to
// do" diagnosis in the paper's §4.3.
type RunStats struct {
	// Makespan is the virtual completion time in seconds.
	Makespan float64
	// MasterBusy is the master's compute-occupied time (payload
	// preparation), the serial bottleneck of Table II.
	MasterBusy float64
	// WorkerUtilization is each worker's busy fraction of the makespan.
	WorkerUtilization []float64
	// MeanUtilization averages WorkerUtilization.
	MeanUtilization float64
}

// RunWithStats is Run for flat schedulers, additionally reporting
// occupancy statistics.
func RunWithStats(ctx context.Context, rc RunConfig) (RunStats, error) {
	rc = rc.withDefaults()
	if rc.CPUs < 2 {
		return RunStats{}, fmt.Errorf("bench: need at least 2 CPUs, got %d", rc.CPUs)
	}
	if rc.Scheduler == Hierarchical {
		return RunStats{}, fmt.Errorf("bench: RunWithStats supports flat schedulers only")
	}
	if rc.Strategy == farm.NFSLoad && rc.FS == nil {
		return RunStats{}, fmt.Errorf("bench: NFS strategy needs an FS model")
	}
	if rc.FS != nil {
		rc.FS.ResetClock()
	}
	t, world, err := runFlat(ctx, rc)
	if err != nil {
		return RunStats{}, err
	}
	stats := RunStats{Makespan: t, MasterBusy: world.BusyTime(0)}
	sum := 0.0
	for r := 1; r < rc.CPUs; r++ {
		u := world.Utilization(r)
		stats.WorkerUtilization = append(stats.WorkerUtilization, u)
		sum += u
	}
	if n := len(stats.WorkerUtilization); n > 0 {
		stats.MeanUtilization = sum / float64(n)
	}
	return stats, nil
}

// applySlowNodes marks the top-ranked workers slow per the config.
func applySlowNodes(world *simnet.World, rc RunConfig) {
	if rc.SlowFraction <= 0 {
		return
	}
	factor := rc.SlowFactor
	if factor <= 0 {
		factor = 0.5
	}
	workers := rc.CPUs - 1
	slow := int(rc.SlowFraction * float64(workers))
	for i := 0; i < slow; i++ {
		world.SetSpeed(rc.CPUs-1-i, factor)
	}
}

func runFlat(ctx context.Context, rc RunConfig) (float64, *simnet.World, error) {
	eng := simnet.NewEngine()
	workers := rc.CPUs - 1
	world := simnet.NewWorld(eng, rc.CPUs, rc.Link)
	applySlowNodes(world, rc)
	if rc.Telemetry != nil {
		// Farm durations and spans must be virtual seconds, not wall
		// time: bind the registry to the simulation clock.
		rc.Telemetry.SetClock(eng.Now)
	}
	opts := farm.Options{Strategy: rc.Strategy, BatchSize: rc.BatchSize, Telemetry: rc.Telemetry}
	errs := make([]error, workers+1)
	for r := 1; r <= workers; r++ {
		rank := r
		eng.Go(fmt.Sprintf("worker-%d", rank), func(p *simnet.Proc) {
			c := world.Comm(rank)
			c.Bind(p)
			var store farm.Store
			if rc.FS != nil {
				store = farm.SimStore{FS: rc.FS, Comm: c}
			}
			errs[rank] = farm.RunWorker(c, farm.SimExecutor{Comm: c, Costs: rc.Costs}, store, opts)
		})
	}
	eng.Go("master", func(p *simnet.Proc) {
		c := world.Comm(0)
		c.Bind(p)
		loader := farm.SimLoader{Comm: c, Costs: rc.Costs}
		var err error
		if rc.Scheduler == StaticBlock {
			_, err = farm.RunStaticMaster(ctx, c, rc.Tasks, loader, opts)
		} else {
			_, err = farm.RunMaster(ctx, c, rc.Tasks, loader, opts)
		}
		errs[0] = err
	})
	if err := eng.Run(); err != nil {
		// A cancelled master abandons the protocol, which the engine
		// reports as a deadlock; surface the cancellation instead.
		if ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		return 0, nil, err
	}
	for rank, err := range errs {
		if err != nil {
			return 0, nil, fmt.Errorf("bench: rank %d: %w", rank, err)
		}
	}
	return eng.Now(), world, nil
}

func runHierarchical(ctx context.Context, rc RunConfig) (float64, error) {
	groups := rc.Groups
	if groups < 1 {
		groups = 4
	}
	chunk := rc.Chunk
	if chunk < 1 {
		chunk = 8
	}
	size := rc.CPUs
	if size < 1+2*groups {
		return 0, fmt.Errorf("bench: %d CPUs too few for %d groups", size, groups)
	}
	eng := simnet.NewEngine()
	world := simnet.NewWorld(eng, size, rc.Link)
	applySlowNodes(world, rc)
	if rc.Telemetry != nil {
		rc.Telemetry.SetClock(eng.Now)
	}
	opts := farm.Options{Strategy: rc.Strategy, BatchSize: rc.BatchSize, Telemetry: rc.Telemetry}
	errs := make([]error, size)
	for g := 0; g < groups; g++ {
		sub := g + 1
		ws := farm.HierarchyWorkers(size, groups, g)
		eng.Go(fmt.Sprintf("sub-%d", sub), func(p *simnet.Proc) {
			c := world.Comm(sub)
			c.Bind(p)
			errs[sub] = farm.RunSubMaster(c, ws, opts)
		})
		for _, wr := range ws {
			rank := wr
			master := sub
			eng.Go(fmt.Sprintf("worker-%d", rank), func(p *simnet.Proc) {
				c := world.Comm(rank)
				c.Bind(p)
				wopts := opts
				wopts.MasterRank = master
				var store farm.Store
				if rc.FS != nil {
					store = farm.SimStore{FS: rc.FS, Comm: c}
				}
				errs[rank] = farm.RunWorker(c, farm.SimExecutor{Comm: c, Costs: rc.Costs}, store, wopts)
			})
		}
	}
	eng.Go("root", func(p *simnet.Proc) {
		c := world.Comm(0)
		c.Bind(p)
		loader := farm.SimLoader{Comm: c, Costs: rc.Costs}
		_, errs[0] = farm.RunRootMaster(ctx, c, rc.Tasks, loader, opts, groups, chunk)
	})
	if err := eng.Run(); err != nil {
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		return 0, err
	}
	for rank, err := range errs {
		if err != nil {
			return 0, fmt.Errorf("bench: rank %d: %w", rank, err)
		}
	}
	return eng.Now(), nil
}
