package serve

import (
	"net/http"
	"strings"
	"testing"

	"riskbench/internal/risk"
	"riskbench/internal/telemetry"
)

// TestServeTraceOverTCPFarm is the end-to-end tracing acceptance test: a
// request priced through the full serving path — admission, batcher,
// engine — backed by TCP farm workers that each carry a FRESH telemetry
// registry (so worker spans can only reach the server by riding the farm
// wire) must leave one reassembled span tree on the server containing
// the master-side farm.task spans and the worker-side farm.compute
// spans, parent-linked, and /debug/traces must render it.
func TestServeTraceOverTCPFarm(t *testing.T) {
	reg := telemetry.New()
	eng := &risk.Engine{
		Workers:   2,
		BatchSize: 4,
		Telemetry: reg,
		Backend:   &risk.TCPBackend{Spawn: risk.GoTCPWorkers(func(int) *telemetry.Registry { return telemetry.New() })},
	}
	s := New(Config{Engine: eng, Telemetry: reg, CacheSize: -1})
	defer s.Close()

	if w := postJSON(s, "/price", cfBody(100)); w.Code != http.StatusOK {
		t.Fatalf("price: status %d body %s", w.Code, w.Body.String())
	}

	traces := reg.Traces()
	if len(traces) != 1 {
		t.Fatalf("server retains %d traces, want 1", len(traces))
	}
	tr := traces[0]
	byID := make(map[uint64]telemetry.SpanRecord, len(tr.Spans))
	for _, sp := range tr.Spans {
		byID[sp.ID] = sp
	}
	// The request tree must run serve.request → serve.queue and
	// serve.request → … → farm.run → farm.task → farm.compute.
	parentName := func(sp telemetry.SpanRecord) string { return byID[sp.ParentID].Name }
	root, ok := tr.Find("serve.request")
	if !ok {
		t.Fatalf("no serve.request root in trace: %+v", tr.Spans)
	}
	if root.ParentID != 0 {
		t.Fatalf("serve.request has parent %d, want root", root.ParentID)
	}
	if q, ok := tr.Find("serve.queue"); !ok || q.ParentID != root.ID {
		t.Fatalf("serve.queue missing or mis-parented: %+v", q)
	}
	task, ok := tr.Find("farm.task")
	if !ok {
		t.Fatal("no master-side farm.task span in trace")
	}
	if parentName(task) != "farm.run" {
		t.Fatalf("farm.task parent is %q, want farm.run", parentName(task))
	}
	compute, ok := tr.Find("farm.compute")
	if !ok {
		t.Fatal("no worker-side farm.compute span in trace (spans did not cross the wire)")
	}
	if compute.ParentID != task.ID {
		t.Fatalf("farm.compute parent = %d, want farm.task %d", compute.ParentID, task.ID)
	}
	// farm.run must chain up to the serve.request root through the risk
	// layer.
	run, _ := tr.Find("farm.run")
	for sp := run; ; {
		if sp.ParentID == 0 {
			if sp.ID != root.ID {
				t.Fatalf("farm.run chains to root %q, want serve.request", sp.Name)
			}
			break
		}
		parent, ok := byID[sp.ParentID]
		if !ok {
			t.Fatalf("span %q has missing parent %d", sp.Name, sp.ParentID)
		}
		sp = parent
	}

	// /debug/traces renders the reassembled tree.
	w := getPath(s, "/debug/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("debug/traces: status %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{"serve.request", "farm.task", "farm.compute"} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/traces misses %q:\n%s", want, body)
		}
	}
}

// TestServeTracingDisabled checks the off switch: no traces accumulate,
// pricing is unaffected.
func TestServeTracingDisabled(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Telemetry: reg, DisableTracing: true, CacheSize: -1})
	defer s.Close()
	if w := postJSON(s, "/price", cfBody(100)); w.Code != http.StatusOK {
		t.Fatalf("price: status %d body %s", w.Code, w.Body.String())
	}
	if traces := reg.Traces(); len(traces) != 0 {
		t.Fatalf("tracing disabled but %d traces retained", len(traces))
	}
	if reg.SpanCount("farm.compute") == 0 {
		t.Fatal("metrics-side spans should still record with tracing off")
	}
}
