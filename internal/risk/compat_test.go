package risk

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"riskbench/internal/farm"
	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
	"riskbench/internal/premia"
	"riskbench/internal/telemetry"
)

// TestCompatMatrix is the rolling-upgrade acceptance test: every pairing
// of adjacent protocol versions (old worker ↔ new master and new worker
// ↔ old master), over both real transports, must price bit-identically
// to the in-process baseline. Optional wire features degrade silently:
// span payloads ship only when both ends negotiated the capability, and
// the hasdelta result marker survives exactly when the worker believes
// its master understands it.
func TestCompatMatrix(t *testing.T) {
	probs := []*premia.Problem{callProblem(90), callProblem(100), callProblem(110), mcProblem(7)}
	local := Engine{Workers: 2, BatchSize: 2}
	want, err := local.PriceBatch(context.Background(), probs)
	if err != nil {
		t.Fatal(err)
	}
	if !want[0].Result.HasDelta {
		t.Fatal("baseline CF price should carry a delta; the hasdelta assertions below assume it")
	}

	for _, transport := range []string{"tcp", "unix"} {
		for _, masterProto := range []int{mpi.ProtoV1, mpi.ProtoV2} {
			for _, workerProto := range []int{mpi.ProtoV1, mpi.ProtoV2} {
				name := fmt.Sprintf("%s/master_v%d/worker_v%d", transport, masterProto, workerProto)
				t.Run(name, func(t *testing.T) {
					reg := telemetry.New()
					e := Engine{
						Workers:   2,
						BatchSize: 2,
						Telemetry: reg,
						Backend: &NetBackend{
							Transport: transport,
							Proto:     masterProto,
							Spawn:     GoNetWorkers(func(int) *telemetry.Registry { return telemetry.New() }, workerProto),
						},
					}
					root := reg.StartTrace("compat.request")
					ctx := telemetry.ContextWithTrace(context.Background(), root.Context())
					out, err := e.PriceBatch(ctx, probs)
					root.End()
					if err != nil {
						t.Fatal(err)
					}

					// Prices must be bit-identical across every pairing:
					// the protocol downgrade may strip telemetry, never
					// numbers.
					for i := range probs {
						if out[i].Err != nil {
							t.Fatalf("problem %d: %v", i, out[i].Err)
						}
						if math.Float64bits(out[i].Result.Price) != math.Float64bits(want[i].Result.Price) {
							t.Errorf("problem %d: price %v over %s, local %v",
								i, out[i].Result.Price, transport, want[i].Result.Price)
						}
						if math.Float64bits(out[i].Result.PriceCI) != math.Float64bits(want[i].Result.PriceCI) {
							t.Errorf("problem %d: CI %v over %s, local %v",
								i, out[i].Result.PriceCI, transport, want[i].Result.PriceCI)
						}
					}

					// Span payloads cross the wire only when master and
					// worker both speak a protocol whose negotiated set
					// includes the spans capability: same-version pairs do
					// (v1 by the implicit legacy contract, v2 by explicit
					// handshake), mixed pairs silently unship them.
					shipped := 0
					for _, tr := range reg.Traces() {
						for _, s := range tr.Spans {
							if s.Name == "farm.compute" {
								shipped++
							}
						}
					}
					if masterProto == workerProto {
						if shipped != len(probs) {
							t.Errorf("%d worker spans shipped, want %d", shipped, len(probs))
						}
					} else if shipped != 0 {
						t.Errorf("%d worker spans shipped across a version boundary, want 0", shipped)
					}

					// The hasdelta marker is stripped only when a v2 worker
					// cannot confirm its master understands it (a v1 master
					// never negotiated the capability).
					wantDelta := !(masterProto == mpi.ProtoV1 && workerProto == mpi.ProtoV2)
					if got := out[0].Result.HasDelta; got != wantDelta {
						t.Errorf("HasDelta = %v, want %v for master v%d / worker v%d",
							got, wantDelta, masterProto, workerProto)
					}
				})
			}
		}
	}
}

// compatFlakyExec fails the first attempt of one named task and prices
// everything else deterministically, so capability pairings can be
// compared bit-for-bit while still generating a worker-side warning
// event (the farm.compute.error behind the events capability).
type compatFlakyExec struct {
	mu     sync.Mutex
	fail   string
	failed bool
}

func (e *compatFlakyExec) Execute(name string, payload []byte, cost float64, size int) (nsp.Object, error) {
	if name == e.fail {
		e.mu.Lock()
		first := !e.failed
		e.failed = true
		e.mu.Unlock()
		if first {
			return nil, errors.New("injected compute failure")
		}
	}
	h := nsp.NewHash()
	h.Set("name", nsp.Str(name))
	h.Set("price", nsp.Scalar(float64(len(name))*1.25))
	return h, nil
}

// TestCompatEventsCapability is the flight recorder's row of the
// rolling-upgrade matrix: a peer whose announced capability set predates
// "events" (it speaks ProtoV2 but only spans+hasdelta — an older build
// mid-upgrade) must downgrade silently. Prices stay bit-identical in
// every pairing; the worker's warning events reach the master's log
// exactly when both ends negotiated the capability.
func TestCompatEventsCapability(t *testing.T) {
	const nw = 2
	legacy := mpi.CapSpans | mpi.CapHasDelta // no events
	cases := []struct {
		name       string
		masterCaps mpi.CapSet
		workerCaps mpi.CapSet
		wantEvents bool
	}{
		{"events_master/events_worker", mpi.AllCaps, mpi.AllCaps, true},
		{"events_master/legacy_worker", mpi.AllCaps, legacy, false},
		{"legacy_master/events_worker", legacy, mpi.AllCaps, false},
	}
	prices := make(map[string]map[string]uint64)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			hub, err := mpi.ListenHubWith("", nw+1, mpi.WorldOptions{Transport: "tcp", Caps: tc.masterCaps})
			if err != nil {
				t.Fatal(err)
			}
			defer hub.Close()
			accepted := make(chan error, 1)
			go func() { accepted <- hub.WaitWorkers() }()
			exec := &compatFlakyExec{fail: "job-01"}
			var wg sync.WaitGroup
			for i := 0; i < nw; i++ {
				c, err := mpi.DialHubWith(hub.Addr(), mpi.WorldOptions{Transport: "tcp", Caps: tc.workerCaps})
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(c mpi.Comm) {
					defer wg.Done()
					defer c.Close()
					if werr := farm.RunWorker(c, exec, nil,
						farm.Options{Strategy: farm.SerializedLoad, Telemetry: telemetry.New()}); werr != nil {
						t.Errorf("worker: %v", werr)
					}
				}(c)
			}
			if err := <-accepted; err != nil {
				t.Fatal(err)
			}
			tasks := make([]farm.Task, 4)
			for i := range tasks {
				tasks[i] = farm.Task{Name: fmt.Sprintf("job-%02d", i), Data: []byte("x")}
			}
			reg := telemetry.New()
			results, err := farm.RunMaster(context.Background(), hub, tasks, farm.LiveLoader{},
				farm.Options{Strategy: farm.SerializedLoad, MaxRetries: 2, Telemetry: reg})
			if err != nil {
				t.Fatal(err)
			}
			wg.Wait()
			got := make(map[string]uint64, len(results))
			for _, r := range results {
				if r.Err != nil {
					t.Fatalf("%s failed despite retry budget: %v", r.Name, r.Err)
				}
				price, ok := farm.ResultField(r, "price")
				if !ok {
					t.Fatalf("%s has no price", r.Name)
				}
				got[r.Name] = math.Float64bits(price)
			}
			prices[tc.name] = got

			// The master's own retry bookkeeping is capability-independent.
			if n := len(reg.Events(telemetry.EventFilter{Prefix: "farm.task.retry"})); n != 1 {
				t.Errorf("%d farm.task.retry events, want 1", n)
			}
			// The worker's compute error crosses the wire only when both
			// ends negotiated "events" — and then it arrives
			// rank-attributed.
			cerrs := reg.Events(telemetry.EventFilter{Prefix: "farm.compute.error"})
			if tc.wantEvents {
				if len(cerrs) != 1 {
					t.Fatalf("%d farm.compute.error events at the master, want 1", len(cerrs))
				}
				if r := cerrs[0].Rank; r < 1 || r > nw {
					t.Errorf("shipped event attributed to rank %d, want a worker rank", r)
				}
			} else if len(cerrs) != 0 {
				t.Errorf("%d worker events crossed a capability boundary, want 0", len(cerrs))
			}
		})
	}
	base := prices[cases[0].name]
	if len(base) == 0 {
		t.Fatal("baseline pairing produced no prices")
	}
	for _, tc := range cases[1:] {
		for name, bits := range prices[tc.name] {
			if bits != base[name] {
				t.Errorf("%s: %s priced differently than the full-caps pairing", tc.name, name)
			}
		}
	}
}

// TestCompatNetBackendDefaults checks the zero-config path: a NetBackend
// with no transport or protocol pinned speaks the latest protocol over
// TCP and keeps the full feature set.
func TestCompatNetBackendDefaults(t *testing.T) {
	reg := telemetry.New()
	e := Engine{
		Workers:   2,
		Telemetry: reg,
		Backend:   &NetBackend{Spawn: GoNetWorkers(func(int) *telemetry.Registry { return telemetry.New() }, 0)},
	}
	probs := []*premia.Problem{callProblem(95), callProblem(105)}
	root := reg.StartTrace("compat.request")
	ctx := telemetry.ContextWithTrace(context.Background(), root.Context())
	out, err := e.PriceBatch(ctx, probs)
	root.End()
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("problem %d: %v", i, o.Err)
		}
		if !o.Result.HasDelta {
			t.Errorf("problem %d lost its hasdelta marker on the default path", i)
		}
	}
	shipped := 0
	for _, tr := range reg.Traces() {
		for _, s := range tr.Spans {
			if s.Name == "farm.compute" {
				shipped++
			}
		}
	}
	if shipped != len(probs) {
		t.Errorf("%d worker spans shipped, want %d", shipped, len(probs))
	}
}
