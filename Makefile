# Developer entry points. `make check` is the recommended pre-commit
# gate: tier-1 build+test, vet, and a race pass over the packages with
# real concurrency (the farm's goroutine ranks, the message transports,
# and the lock-free telemetry primitives).

GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/farm ./internal/mpi ./internal/telemetry

check: build vet test race

bench:
	$(GO) test -bench 'BenchmarkTable|BenchmarkAblation' -benchtime 1x .
