package farm

import (
	"context"
	"fmt"
	"testing"

	"riskbench/internal/simnet"
)

// simTasks builds n tasks of the given virtual cost with ~300-byte
// payloads (a realistic serialized-problem size).
func simTasks(n int, cost float64) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{
			Name: fmt.Sprintf("sim-%05d", i),
			Data: make([]byte, 300),
			Cost: cost,
		}
	}
	return tasks
}

// runSimFarm executes the farm on a simulated cluster and returns the
// virtual makespan in seconds.
func runSimFarm(t *testing.T, tasks []Task, workers int, opts Options, link simnet.LinkConfig, fs *simnet.NFS) (float64, []Result) {
	t.Helper()
	eng := simnet.NewEngine()
	world := simnet.NewWorld(eng, workers+1, link)
	costs := DefaultSimCosts
	for r := 1; r <= workers; r++ {
		rank := r
		eng.Go(fmt.Sprintf("worker-%d", rank), func(p *simnet.Proc) {
			c := world.Comm(rank)
			c.Bind(p)
			var store Store
			if fs != nil {
				store = SimStore{FS: fs, Comm: c}
			}
			if err := RunWorker(c, SimExecutor{Comm: c, Costs: costs}, store, opts); err != nil {
				t.Errorf("sim worker %d: %v", rank, err)
			}
		})
	}
	var results []Result
	var masterErr error
	eng.Go("master", func(p *simnet.Proc) {
		c := world.Comm(0)
		c.Bind(p)
		results, masterErr = RunMaster(context.Background(), c, tasks, SimLoader{Comm: c, Costs: costs}, opts)
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("simulation: %v", err)
	}
	if masterErr != nil {
		t.Fatalf("sim master: %v", masterErr)
	}
	return eng.Now(), results
}

func TestSimFarmCompletesAllTasks(t *testing.T) {
	tasks := simTasks(200, 0.01)
	_, results := runSimFarm(t, tasks, 8, Options{Strategy: SerializedLoad}, simnet.DefaultGigE, nil)
	if len(results) != 200 {
		t.Fatalf("%d results, want 200", len(results))
	}
	seen := map[string]bool{}
	for _, r := range results {
		if seen[r.Name] {
			t.Fatalf("duplicate %s", r.Name)
		}
		seen[r.Name] = true
	}
}

func TestSimFarmSpeedupScalesWithWorkers(t *testing.T) {
	// 200 tasks × 0.1 s of compute: with cheap communication the makespan
	// must shrink ~linearly from 1 to 10 workers.
	tasks := simTasks(200, 0.1)
	t1, _ := runSimFarm(t, tasks, 1, Options{Strategy: SerializedLoad}, simnet.DefaultGigE, nil)
	t10, _ := runSimFarm(t, tasks, 10, Options{Strategy: SerializedLoad}, simnet.DefaultGigE, nil)
	if t1 < 20 {
		t.Fatalf("1-worker makespan %v below total work", t1)
	}
	speedup := t1 / t10
	if speedup < 8.5 || speedup > 10.5 {
		t.Fatalf("speedup %v with 10 workers, want ≈10", speedup)
	}
}

func TestSimFarmMasterBottleneck(t *testing.T) {
	// Near-zero compute: the makespan is bounded below by the master's
	// per-task occupancy, so adding workers stops helping — the paper's
	// Table II regime.
	tasks := simTasks(2000, 0.0)
	t4, _ := runSimFarm(t, tasks, 4, Options{Strategy: SerializedLoad}, simnet.DefaultGigE, nil)
	t64, _ := runSimFarm(t, tasks, 64, Options{Strategy: SerializedLoad}, simnet.DefaultGigE, nil)
	if t64 < t4/16 {
		t.Fatalf("communication-bound makespan kept scaling: %v -> %v", t4, t64)
	}
}

func TestSimFarmStrategyOrdering(t *testing.T) {
	// Serialized load must beat full load at any worker count (the paper's
	// "only objective comparison": serialized < full always).
	tasks := simTasks(3000, 0.0)
	for _, workers := range []int{1, 4, 16} {
		full, _ := runSimFarm(t, tasks, workers, Options{Strategy: FullLoad}, simnet.DefaultGigE, nil)
		ser, _ := runSimFarm(t, tasks, workers, Options{Strategy: SerializedLoad}, simnet.DefaultGigE, nil)
		if ser >= full {
			t.Errorf("%d workers: serialized %v not faster than full %v", workers, ser, full)
		}
	}
}

func TestSimFarmWarmNFSBeatsSerializedAtScale(t *testing.T) {
	// With a warm cache the NFS strategy only costs the master a name
	// send, so at high worker counts it beats serialized load — the
	// crossover the paper observes around 12 CPUs in Table II.
	tasks := simTasks(3000, 0.0)
	names := make([]string, len(tasks))
	for i, task := range tasks {
		names[i] = task.Name
	}
	atWorkers := func(workers int) (nfs, ser float64) {
		fs := simnet.NewNFS(simnet.DefaultNFS)
		nodes := make([]int, workers)
		for i := range nodes {
			nodes[i] = i + 1
		}
		fs.Warm(nodes, names)
		nfs, _ = runSimFarm(t, tasks, workers, Options{Strategy: NFSLoad}, simnet.DefaultGigE, fs)
		ser, _ = runSimFarm(t, tasks, workers, Options{Strategy: SerializedLoad}, simnet.DefaultGigE, nil)
		return nfs, ser
	}
	nfsLow, serLow := atWorkers(1)
	if nfsLow >= serLow*5 {
		t.Errorf("warm NFS catastrophically slow at 1 worker: %v vs %v", nfsLow, serLow)
	}
	nfsHigh, serHigh := atWorkers(32)
	if nfsHigh >= serHigh {
		t.Errorf("32 workers: warm NFS %v not faster than serialized %v", nfsHigh, serHigh)
	}
}

func TestSimFarmColdNFSSlower(t *testing.T) {
	// A cold cache forces every file through the NFS server: slower than
	// serialized load at low worker counts (Table II row 1: 16.4 s vs
	// 7.2 s).
	tasks := simTasks(2000, 0.0)
	fs := simnet.NewNFS(simnet.DefaultNFS)
	cold, _ := runSimFarm(t, tasks, 1, Options{Strategy: NFSLoad}, simnet.DefaultGigE, fs)
	ser, _ := runSimFarm(t, tasks, 1, Options{Strategy: SerializedLoad}, simnet.DefaultGigE, nil)
	if cold <= ser {
		t.Errorf("cold NFS %v not slower than serialized %v", cold, ser)
	}
	hits, misses := fs.Stats()
	if hits != 0 || misses != len(tasks) {
		t.Errorf("cold run stats: %d hits, %d misses", hits, misses)
	}
}

func TestSimFarmBatchingReducesMakespanWhenCommBound(t *testing.T) {
	// The paper's proposed improvement: bunching tasks cuts per-message
	// latency when communication dominates.
	tasks := simTasks(2000, 0.0)
	single, _ := runSimFarm(t, tasks, 16, Options{Strategy: SerializedLoad, BatchSize: 1}, simnet.DefaultGigE, nil)
	batched, _ := runSimFarm(t, tasks, 16, Options{Strategy: SerializedLoad, BatchSize: 20}, simnet.DefaultGigE, nil)
	if batched >= single {
		t.Errorf("batching did not help: %v vs %v", batched, single)
	}
}

func TestSimFarmDeterministic(t *testing.T) {
	tasks := simTasks(500, 0.01)
	a, _ := runSimFarm(t, tasks, 7, Options{Strategy: FullLoad}, simnet.DefaultGigE, nil)
	b, _ := runSimFarm(t, tasks, 7, Options{Strategy: FullLoad}, simnet.DefaultGigE, nil)
	if a != b {
		t.Fatalf("simulated makespan not deterministic: %v vs %v", a, b)
	}
}

func TestSimFarmHierarchicalCompletes(t *testing.T) {
	const groups = 2
	const workersPerGroup = 4
	const size = 1 + groups + groups*workersPerGroup
	tasks := simTasks(300, 0.01)
	eng := simnet.NewEngine()
	world := simnet.NewWorld(eng, size, simnet.DefaultGigE)
	costs := DefaultSimCosts
	opts := Options{Strategy: SerializedLoad}
	for g := 0; g < groups; g++ {
		sub := g + 1
		workers := HierarchyWorkers(size, groups, g)
		eng.Go(fmt.Sprintf("sub-%d", sub), func(p *simnet.Proc) {
			c := world.Comm(sub)
			c.Bind(p)
			if err := RunSubMaster(c, workers, opts); err != nil {
				t.Errorf("sim sub-master %d: %v", sub, err)
			}
		})
		for _, wr := range workers {
			rank := wr
			master := sub
			eng.Go(fmt.Sprintf("w-%d", rank), func(p *simnet.Proc) {
				c := world.Comm(rank)
				c.Bind(p)
				wopts := opts
				wopts.MasterRank = master
				if err := RunWorker(c, SimExecutor{Comm: c, Costs: costs}, nil, wopts); err != nil {
					t.Errorf("sim worker %d: %v", rank, err)
				}
			})
		}
	}
	var results []Result
	eng.Go("root", func(p *simnet.Proc) {
		c := world.Comm(0)
		c.Bind(p)
		var err error
		results, err = RunRootMaster(context.Background(), c, tasks, SimLoader{Comm: c, Costs: costs}, opts, groups, 10)
		if err != nil {
			t.Errorf("sim root: %v", err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatalf("simulation: %v", err)
	}
	if len(results) != 300 {
		t.Fatalf("%d results, want 300", len(results))
	}
}
