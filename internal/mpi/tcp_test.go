package mpi

import (
	"sync"
	"testing"
	"time"

	"riskbench/internal/nsp"
)

// startTCPWorld builds a hub plus size-1 dialled workers on the loopback.
func startTCPWorld(t *testing.T, size int) (*HubComm, []*WorkerComm) {
	t.Helper()
	hub, err := ListenHub("127.0.0.1:0", size)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	accepted := make(chan error, 1)
	go func() { accepted <- hub.WaitWorkers() }()
	workers := make([]*WorkerComm, 0, size-1)
	for i := 1; i < size; i++ {
		w, err := DialHub(hub.Addr())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		workers = append(workers, w)
	}
	if err := <-accepted; err != nil {
		t.Fatalf("accept: %v", err)
	}
	t.Cleanup(func() {
		hub.Close()
		for _, w := range workers {
			w.Close()
		}
	})
	return hub, workers
}

func TestTCPHandshakeAssignsRanks(t *testing.T) {
	hub, workers := startTCPWorld(t, 4)
	if hub.Rank() != 0 || hub.Size() != 4 {
		t.Fatalf("hub rank/size = %d/%d", hub.Rank(), hub.Size())
	}
	seen := map[int]bool{}
	for _, w := range workers {
		if w.Size() != 4 {
			t.Fatalf("worker size %d", w.Size())
		}
		if w.Rank() < 1 || w.Rank() > 3 || seen[w.Rank()] {
			t.Fatalf("bad rank %d", w.Rank())
		}
		seen[w.Rank()] = true
	}
}

func TestTCPMasterWorkerRoundTrip(t *testing.T) {
	hub, workers := startTCPWorld(t, 3)
	for _, w := range workers {
		go func(w *WorkerComm) {
			data, st, err := w.Recv(0, AnyTag)
			if err != nil {
				return
			}
			_ = w.Send(append(data, byte(w.Rank())), 0, st.Tag)
		}(w)
	}
	for r := 1; r <= 2; r++ {
		if err := hub.Send([]byte{42}, r, 5); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		data, st, err := hub.Recv(AnySource, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != 2 || data[0] != 42 || int(data[1]) != st.Source {
			t.Fatalf("echo mismatch: % x from %d", data, st.Source)
		}
	}
}

func TestTCPWorkerToWorkerViaHub(t *testing.T) {
	_, workers := startTCPWorld(t, 3)
	w1, w2 := workers[0], workers[1]
	go func() {
		_ = w1.Send([]byte("peer"), w2.Rank(), 9)
	}()
	data, st, err := w2.Recv(w1.Rank(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "peer" || st.Source != w1.Rank() {
		t.Fatalf("got %q from %d", data, st.Source)
	}
}

func TestTCPObjectTransmission(t *testing.T) {
	hub, workers := startTCPWorld(t, 2)
	h := nsp.NewHash()
	h.Set("A", nsp.RowVec(3.14, 2.71))
	h.Set("msg", nsp.Str("over tcp"))
	go func() {
		if err := SendObj(hub, h, 1, 2); err != nil {
			t.Error(err)
		}
	}()
	got, _, err := RecvObj(workers[0], 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(h) {
		t.Fatal("object corrupted over TCP")
	}
}

func TestTCPLargeMessage(t *testing.T) {
	hub, workers := startTCPWorld(t, 2)
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	go func() {
		if err := hub.Send(big, 1, 1); err != nil {
			t.Error(err)
		}
	}()
	data, _, err := workers[0].Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(big) {
		t.Fatalf("got %d bytes, want %d", len(data), len(big))
	}
	for i := 0; i < len(big); i += 100003 {
		if data[i] != big[i] {
			t.Fatalf("corruption at byte %d", i)
		}
	}
}

func TestTCPConcurrentTraffic(t *testing.T) {
	hub, workers := startTCPWorld(t, 5)
	const per = 25
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *WorkerComm) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Send([]byte{byte(w.Rank()), byte(i)}, 0, 1); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	counts := map[int]int{}
	for i := 0; i < 4*per; i++ {
		data, st, err := hub.Recv(AnySource, 1)
		if err != nil {
			t.Fatal(err)
		}
		if int(data[0]) != st.Source {
			t.Fatal("source mismatch")
		}
		counts[st.Source]++
	}
	for r := 1; r <= 4; r++ {
		if counts[r] != per {
			t.Fatalf("rank %d delivered %d of %d", r, counts[r], per)
		}
	}
	wg.Wait()
}

func TestTCPCloseUnblocksWorker(t *testing.T) {
	hub, workers := startTCPWorld(t, 2)
	done := make(chan error, 1)
	go func() {
		_, _, err := workers[0].Recv(0, 0)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	hub.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("worker Recv returned nil after hub close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("worker Recv did not unblock when hub closed")
	}
}

func TestHubRejectsTooSmallWorld(t *testing.T) {
	if _, err := NewHub("127.0.0.1:0", 1); err == nil {
		t.Fatal("size-1 hub accepted")
	}
}
