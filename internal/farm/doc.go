// Package farm implements the paper's parallel portfolio pricer: a
// "Robbin Hood" master/worker task farm (Figs. 4–5) over any mpi.Comm.
// The master seeds every worker with one job, then hands a new job to
// whichever worker returns a result first, until the portfolio is done; a
// final empty message tells each worker to stop.
//
// Three communication strategies, matching the labels of the paper's
// tables, decide how a pricing problem travels from master to worker:
//
//   - FullLoad: the master decodes the problem file into an object, then
//     re-serialises and packs it for transmission (paying the full object
//     construction round on the master).
//   - NFSLoad: the master sends only the file name; the worker reads the
//     file from the shared file system.
//   - SerializedLoad: the master turns the file straight into a Serial
//     buffer (nsp.SLoad) and ships the bytes untouched.
//
// The package is transport- and execution-agnostic: Loader abstracts the
// master-side payload preparation, Executor the worker-side pricing, and
// Store the shared file system, with live implementations (really pricing
// with package premia, really reading files) and simulated ones (charging
// modelled virtual time, reading from the simnet NFS model).
//
// Extensions beyond the paper's experiments, both proposed in its
// conclusion, are included: task batching (send bunches of problems in one
// message to amortise latency) via Options.BatchSize, and a two-level
// hierarchy of sub-masters via RunRootMaster/RunSubMaster.
package farm
