package premia

import (
	"math"
	"testing"
	"testing/quick"

	"riskbench/internal/mathutil"
)

func TestImpliedVolRoundTrip(t *testing.T) {
	m := bsParams{S0: 100, R: 0.05, Div: 0.01, Sigma: 0}
	for _, sigma := range []float64{0.05, 0.15, 0.3, 0.6, 1.2} {
		for _, k := range []float64{70.0, 100, 140} {
			for _, call := range []bool{true, false} {
				mm := m
				mm.Sigma = sigma
				var price float64
				if call {
					price, _ = bsCallPrice(mm, k, 1)
				} else {
					price, _ = bsPutPrice(mm, k, 1)
				}
				got, err := ImpliedVol(price, m, k, 1, call)
				if err != nil {
					t.Fatalf("σ=%v K=%v call=%v: %v", sigma, k, call, err)
				}
				// The achievable vol accuracy is the price tolerance
				// divided by vega: deep in/out-of-the-money low-vol quotes
				// are inherently ill-conditioned.
				d1, _ := bsD1D2(mm, k, 1)
				vega := 100 * math.Exp(-0.01) * mathutil.NormPDF(d1)
				tol := 1e-8 + 1e-10/math.Max(vega, 1e-10)
				if math.Abs(got-sigma) > tol {
					t.Errorf("σ=%v K=%v call=%v: recovered %v (tol %v)", sigma, k, call, got, tol)
				}
			}
		}
	}
}

func TestImpliedVolPropertyRoundTrip(t *testing.T) {
	f := func(sSeed, kSeed, tSeed uint16) bool {
		sigma := 0.02 + float64(sSeed%300)/100 // 0.02..3.01
		k := 40 + float64(kSeed%1600)/10       // 40..200
		tt := 0.05 + float64(tSeed%100)/20     // 0.05..5
		m := bsParams{S0: 100, R: 0.03, Div: 0.01, Sigma: sigma}
		price, _ := bsCallPrice(m, k, tt)
		lower := math.Max(100*math.Exp(-0.01*tt)-k*math.Exp(-0.03*tt), 0)
		if price < 1e-10 || price-lower < 1e-6 {
			return true // at an arbitrage bound the inversion is ill-posed
		}
		got, err := ImpliedVol(price, bsParams{S0: 100, R: 0.03, Div: 0.01}, k, tt, true)
		if err != nil {
			return false
		}
		// Near-zero vega regions tolerate more.
		return math.Abs(got-sigma) < 1e-6*math.Max(1, sigma) || math.Abs(got-sigma) < 5e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestImpliedVolRejectsArbitrage(t *testing.T) {
	m := bsParams{S0: 100, R: 0.05}
	// Call worth more than the stock: impossible.
	if _, err := ImpliedVol(150, m, 100, 1, true); err == nil {
		t.Error("price above S accepted")
	}
	// Call below intrinsic forward value: impossible.
	if _, err := ImpliedVol(0.0, m, 50, 1, true); err == nil {
		t.Error("price below lower bound accepted")
	}
	if _, err := ImpliedVol(1, m, -5, 1, true); err == nil {
		t.Error("negative strike accepted")
	}
}

func TestImpliedVolFromProblem(t *testing.T) {
	p := bsProblem(OptCallEuro, MethodCFCall, 110, 2)
	res, err := p.Compute()
	if err != nil {
		t.Fatal(err)
	}
	iv, err := ImpliedVolFromProblem(p, res.Price)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv-0.25) > 1e-8 {
		t.Errorf("implied vol %v, want 0.25", iv)
	}
	// Works without a sigma parameter too (quoting from market price).
	q := New().SetModel(ModelBS1D).SetOption(OptPutEuro).SetMethod(MethodCFPut).
		Set("S0", 100).Set("r", 0.05).Set("divid", 0.02).Set("K", 100).Set("T", 1)
	pr, err := bsProblem(OptPutEuro, MethodCFPut, 100, 1).Compute()
	if err != nil {
		t.Fatal(err)
	}
	iv2, err := ImpliedVolFromProblem(q, pr.Price)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv2-0.25) > 1e-8 {
		t.Errorf("implied vol without sigma param: %v", iv2)
	}
	if _, err := ImpliedVolFromProblem(bsProblem(OptPutAmer, MethodFDBS, 100, 1), 5); err == nil {
		t.Error("American option accepted by implied vol")
	}
}

func TestImpliedVolDeepOTM(t *testing.T) {
	// Tiny prices at far strikes still invert within loose tolerance.
	m := bsParams{S0: 100, R: 0.02, Sigma: 0.2}
	price, _ := bsCallPrice(m, 250, 0.5)
	if price <= 0 {
		t.Skip("price underflowed")
	}
	iv, err := ImpliedVol(price, bsParams{S0: 100, R: 0.02}, 250, 0.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv-0.2) > 1e-4 {
		t.Errorf("deep OTM implied vol %v", iv)
	}
}
