package mathutil

import (
	"math"
	"testing"
)

func TestHaltonRange(t *testing.T) {
	h := NewHalton(8, 1)
	pt := make([]float64, 8)
	for i := 0; i < 10000; i++ {
		h.Next(pt)
		for d, v := range pt {
			if v <= 0 || v >= 1 {
				t.Fatalf("point %d dim %d: %v out of (0,1)", i, d, v)
			}
		}
	}
}

func TestRadicalInverse(t *testing.T) {
	// Base 2: 1→0.5, 2→0.25, 3→0.75, 4→0.125.
	cases := []struct {
		n    uint64
		want float64
	}{{1, 0.5}, {2, 0.25}, {3, 0.75}, {4, 0.125}, {5, 0.625}}
	for _, c := range cases {
		if got := radicalInverse(c.n, 2); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("radicalInverse(%d, 2) = %v, want %v", c.n, got, c.want)
		}
	}
	// Base 3: 1→1/3, 2→2/3, 3→1/9.
	if got := radicalInverse(3, 3); math.Abs(got-1.0/9) > 1e-15 {
		t.Errorf("radicalInverse(3,3) = %v", got)
	}
}

func TestHaltonEquidistribution(t *testing.T) {
	// Star-discrepancy proxy: each axis-aligned quarter of [0,1)² must
	// hold ≈ 25% of the points, much tighter than Monte Carlo noise.
	h := NewHalton(2, 7)
	pt := make([]float64, 2)
	n := 4096
	counts := [2][2]int{}
	for i := 0; i < n; i++ {
		h.Next(pt)
		counts[int(pt[0]*2)][int(pt[1]*2)]++
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			frac := float64(counts[i][j]) / float64(n)
			if math.Abs(frac-0.25) > 0.01 {
				t.Errorf("quadrant (%d,%d) holds %.3f of points", i, j, frac)
			}
		}
	}
}

func TestHaltonIntegratesSmoothFunction(t *testing.T) {
	// ∫ x·y over [0,1]² = 0.25; QMC at n=8192 should be within 1e-3,
	// roughly 10× tighter than plain MC at that size.
	h := NewHalton(2, 3)
	pt := make([]float64, 2)
	n := 8192
	sum := 0.0
	for i := 0; i < n; i++ {
		h.Next(pt)
		sum += pt[0] * pt[1]
	}
	got := sum / float64(n)
	if math.Abs(got-0.25) > 1e-3 {
		t.Errorf("QMC integral %v, want 0.25", got)
	}
}

func TestHaltonRotationsDiffer(t *testing.T) {
	a := NewHalton(3, 1)
	b := NewHalton(3, 2)
	pa := make([]float64, 3)
	pb := make([]float64, 3)
	a.Next(pa)
	b.Next(pb)
	same := 0
	for d := range pa {
		if pa[d] == pb[d] {
			same++
		}
	}
	if same == 3 {
		t.Fatal("different seeds produced the same rotation")
	}
}

func TestHaltonDeterministic(t *testing.T) {
	a := NewHalton(4, 9)
	b := NewHalton(4, 9)
	pa := make([]float64, 4)
	pb := make([]float64, 4)
	for i := 0; i < 100; i++ {
		a.Next(pa)
		b.Next(pb)
		for d := range pa {
			if pa[d] != pb[d] {
				t.Fatal("same seed diverged")
			}
		}
	}
}

func TestHaltonDimBounds(t *testing.T) {
	for _, dim := range []int{0, MaxHaltonDim + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("dim %d accepted", dim)
				}
			}()
			NewHalton(dim, 1)
		}()
	}
	NewHalton(MaxHaltonDim, 1) // max must work
}

// TestHaltonLeapfrogPartitionsSequence checks the kernel-sharding
// contract: the leapfrogged generators with starts 1..stride and a common
// seed emit, between them, exactly the plain generator's sequence —
// same points, same positions.
func TestHaltonLeapfrogPartitionsSequence(t *testing.T) {
	const dim, n, stride = 5, 1000, 4
	const seed = 7
	plain := NewHalton(dim, seed)
	want := make([][]float64, n)
	for i := range want {
		want[i] = make([]float64, dim)
		plain.Next(want[i])
	}
	got := make([][]float64, n)
	for j := 0; j < stride; j++ {
		h := NewHaltonLeap(dim, seed, uint64(1+j), stride)
		for pos := j; pos < n; pos += stride {
			got[pos] = make([]float64, dim)
			h.Next(got[pos])
		}
	}
	for i := range want {
		for d := range want[i] {
			if want[i][d] != got[i][d] {
				t.Fatalf("point %d dim %d: plain %v, leapfrog %v", i, d, want[i][d], got[i][d])
			}
		}
	}
}

func TestHaltonLeapRejectsZeroStride(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("stride 0 accepted")
		}
	}()
	NewHaltonLeap(2, 1, 1, 0)
}
