// Package simnet is a discrete-event simulator of the cluster the paper
// ran on (a 256-node, 512-core SUPELEC cluster on Gigabit Ethernet with an
// NFS file system). It exists because the benchmark's evaluation sweeps
// 2–512 CPUs, which cannot be executed for real on one machine: instead,
// per-task compute costs (calibrated from the paper's §4.3 figures or
// measured live) are replayed on virtual nodes while the network and NFS
// are modelled explicitly.
//
// The simulation is process-oriented: every simulated rank runs in its own
// goroutine, and a single "token" moves between the engine and exactly one
// runnable process at a time, so simulated programs are written as
// ordinary blocking Go code. Comm implements the same mpi.Comm interface
// as the live transports; the farm package's master/worker code therefore
// runs unmodified in virtual time.
//
// Model parameters:
//
//   - Link: per-message latency, bandwidth, and per-message CPU send
//     overhead on the sender (which serialises the master's sends, the
//     effect that caps speedup in the paper's Tables I and II).
//   - NFS: a FIFO server resource with per-request service time plus
//     transfer time, and a per-node client cache (the cache is what made
//     the paper's NFS columns beat serialized-load at high CPU counts).
//   - Compute: Comm.Compute(seconds) advances the owning process's clock.
package simnet
