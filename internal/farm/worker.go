package farm

import (
	"fmt"

	"riskbench/internal/mpi"
	"riskbench/internal/nsp"
	"riskbench/internal/telemetry"
)

// Executor abstracts the worker-side pricing of one task. Live executors
// rebuild the premia problem from the payload and really compute;
// simulated executors advance virtual time by the task's cost.
type Executor interface {
	// Execute prices one task and returns its result object (conventionally
	// the hash built by resultHash). payload holds the problem bytes
	// (possibly fetched from the store under NFSLoad); size is the payload
	// size declared by the descriptor, which simulated NFS reads need.
	Execute(name string, payload []byte, cost float64, size int) (nsp.Object, error)
}

// ObjExecutor is the optional extension of Executor for workers on
// object-reference communicators: when the master ships a problem object
// by reference instead of a serialized payload, the worker prices it
// through ExecuteObj with no decode step. Executors that never run on
// such communicators need not implement it.
type ObjExecutor interface {
	Executor
	// ExecuteObj prices one task whose problem arrived as an object.
	ExecuteObj(name string, obj nsp.Object, cost float64, size int) (nsp.Object, error)
}

// Store abstracts the shared file system used by the NFSLoad strategy.
type Store interface {
	// Read fetches a problem file's bytes by name. size is the byte count
	// declared by the descriptor (simulated stores charge it as transfer
	// volume; live stores may ignore it).
	Read(name string, size int) ([]byte, error)
}

// RunWorker runs the Fig. 4 slave loop: receive a batch, fetch or unpack
// its payloads, price every task, send the result list back, repeat until
// the empty stop message arrives. With opts.Telemetry set, payload
// fetches and per-task computations are timed into the
// "farm.fetch_seconds" and "farm.compute_seconds" histograms, each
// computation under a "farm.compute" span. When the batch descriptor
// carries a trace, the spans parent onto the master's farm.task spans
// and their finished records ship back with the results, so the master
// reassembles the whole tree even when the worker is another process.
func RunWorker(c mpi.Comm, exec Executor, store Store, opts Options) error {
	master := opts.MasterRank
	reg := opts.Telemetry
	// clock times compute calls for the "seconds" result-hash field. It
	// is the registry clock when there is one (virtual under simnet) and
	// the sanctioned wall fallback otherwise, never raw time.Now — the
	// riskvet wallclock rule.
	clock := telemetry.Wall
	if reg != nil {
		clock = reg.Now
	}
	for {
		obj, _, err := mpi.RecvObj(c, master, TagTask)
		if err != nil {
			reg.Emit(telemetry.LevelError, "farm.worker.exit", telemetry.TraceContext{},
				telemetry.Num("rank", float64(c.Rank())), telemetry.Str("err", err.Error()))
			return fmt.Errorf("farm: worker %d recv descriptor: %w", c.Rank(), err)
		}
		recvAt := reg.Now()
		// Snapshot the event cursor so only the events this batch emits
		// ship back with its results.
		evCursor := reg.EventCursor()
		desc, err := decodeBatch(obj)
		if err != nil {
			return err
		}
		names, costs, sizes := desc.Names, desc.Costs, desc.Sizes
		if len(names) == 0 {
			reg.Emit(telemetry.LevelInfo, "farm.worker.stop", telemetry.TraceContext{},
				telemetry.Num("rank", float64(c.Rank())))
			return nil // stop message
		}
		// Optional payload features are gated on the negotiated
		// capability set: a hub that never announced the spans
		// capability (an older master during a rolling upgrade) gets
		// results without span payloads, and one that never announced
		// hasdelta gets result hashes without the marker field.
		caps := mpi.PeerCaps(c, master)
		traced := reg != nil && desc.Trace.valid() && len(desc.Trace.parents) == len(names)
		ship := traced && !opts.LocalSpans && caps.Has(mpi.CapSpans)
		// Events ship on their own negotiated capability, tracing or not:
		// warning+ events emitted while pricing this batch ride back for
		// rank-attributed folding into the master's log.
		shipEvents := reg != nil && !opts.LocalSpans && caps.Has(mpi.CapEvents)
		taskCtx := func(i int) telemetry.TraceContext {
			return telemetry.TraceContext{TraceID: desc.Trace.traceID, SpanID: desc.Trace.parents[i]}
		}
		var shipped []telemetry.SpanRecord
		payloads := make([][]byte, len(names))
		var objs []nsp.Object
		var fetchSpan *telemetry.Span
		if traced {
			fetchSpan = reg.StartSpanIn(taskCtx(0), "farm.fetch")
		}
		fetchStart := reg.Now()
		if opts.Strategy.NeedsPayload() {
			pobj, _, err := mpi.RecvObj(c, master, TagPayload)
			if err != nil {
				return fmt.Errorf("farm: worker %d recv payload: %w", c.Rank(), err)
			}
			list, ok := pobj.(*nsp.List)
			if !ok || list.Len() != len(names) {
				return fmt.Errorf("farm: worker %d: malformed payload list", c.Rank())
			}
			for i, item := range list.Items {
				if s, ok := item.(*nsp.Serial); ok {
					payloads[i] = s.Data
					continue
				}
				// A non-serial item is a problem shipped by reference over
				// an in-process communicator.
				if objs == nil {
					objs = make([]nsp.Object, len(names))
				}
				objs[i] = item
			}
			if objs != nil {
				if _, ok := exec.(ObjExecutor); !ok {
					return fmt.Errorf("farm: worker %d: payload has object items but executor is not an ObjExecutor", c.Rank())
				}
			}
		} else {
			if store == nil {
				return fmt.Errorf("farm: worker %d: NFS strategy without a store", c.Rank())
			}
			for i, name := range names {
				data, err := store.Read(name, int(sizes[i]))
				if err != nil {
					return fmt.Errorf("farm: worker %d read %q: %w", c.Rank(), name, err)
				}
				payloads[i] = data
			}
		}
		reg.Observe("farm.fetch_seconds", reg.Now()-fetchStart)
		if fetchSpan != nil {
			fetchSpan.End()
			if ship {
				shipped = append(shipped, fetchSpan.Record())
			}
		}
		out := nsp.NewList()
		for i, name := range names {
			var span *telemetry.Span
			if traced {
				span = reg.StartSpanIn(taskCtx(i), "farm.compute")
			} else {
				span = reg.StartSpan("farm.compute")
			}
			start := clock()
			var res nsp.Object
			var err error
			if objs != nil && objs[i] != nil {
				res, err = exec.(ObjExecutor).ExecuteObj(name, objs[i], costs[i], int(sizes[i]))
			} else {
				res, err = exec.Execute(name, payloads[i], costs[i], int(sizes[i]))
			}
			elapsed := clock() - start
			reg.Observe("farm.compute_seconds", elapsed)
			span.End()
			if ship {
				shipped = append(shipped, span.Record())
			}
			if err != nil {
				// A pricing failure is the task's problem, not the
				// worker's: report it and keep serving (the master decides
				// whether to retry).
				reg.Emit(telemetry.LevelWarn, "farm.compute.error", span.Context(),
					telemetry.Str("task", name), telemetry.Str("err", err.Error()))
				res = errorResultHash(name, err.Error())
			}
			if h, ok := res.(*nsp.Hash); ok {
				// Stamp the measured compute time unless the executor
				// supplied its own (simulated executors charge virtual
				// cost instead of being timed).
				if _, has := h.Get("seconds"); !has {
					h.Set("seconds", nsp.Scalar(elapsed))
				}
				if !caps.Has(mpi.CapHasDelta) {
					h.Del("hasdelta")
				}
			}
			out.Add(res)
		}
		if len(shipped) > 0 {
			out.Add(encodeSpanPayload(shipped, recvAt))
		}
		if shipEvents {
			if evs := reg.Events(telemetry.EventFilter{MinLevel: telemetry.LevelWarn, SinceSeq: evCursor}); len(evs) > 0 {
				out.Add(encodeEventPayload(evs, recvAt))
			}
		}
		if err := mpi.SendObj(c, out, master, TagResult); err != nil {
			return fmt.Errorf("farm: worker %d send results: %w", c.Rank(), err)
		}
	}
}
